// The parallel experiment runner's headline contract: any thread count
// produces byte-identical results to a sequential run — scenario aggregates,
// replication outcomes, and engine metrics snapshots alike.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.h"
#include "obs/sink.h"
#include "obs/sink_factory.h"
#include "sched/experiment.h"
#include "sched/policies_basic.h"
#include "sched/policies_learned.h"
#include "workloads/features.h"
#include "workloads/mixes.h"

namespace {

using namespace smoe;

constexpr std::uint64_t kSeed = 2017;

std::vector<sched::SchemeScenarioResult> run_panel(std::size_t n_threads) {
  const wl::FeatureModel features(kSeed);
  sim::SimConfig cfg;
  cfg.seed = kSeed;
  sched::ExperimentRunner runner(cfg, features, 3, 11, n_threads);
  sched::PairwisePolicy pairwise;
  sched::MoePolicy moe(features, kSeed);
  sched::OraclePolicy oracle;
  return runner.run_scenario(wl::scenario_by_label("L5"), {&pairwise, &moe, &oracle});
}

void expect_identical(const std::vector<sched::SchemeScenarioResult>& a,
                      const std::vector<sched::SchemeScenarioResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].scheme);
    EXPECT_EQ(a[i].scheme, b[i].scheme);
    EXPECT_EQ(a[i].scenario, b[i].scenario);
    // Exact equality: parallel execution must be bit-identical, not close.
    EXPECT_EQ(a[i].stp_geomean, b[i].stp_geomean);
    EXPECT_EQ(a[i].stp_min, b[i].stp_min);
    EXPECT_EQ(a[i].stp_max, b[i].stp_max);
    EXPECT_EQ(a[i].antt_red_mean, b[i].antt_red_mean);
    EXPECT_EQ(a[i].antt_red_min, b[i].antt_red_min);
    EXPECT_EQ(a[i].antt_red_max, b[i].antt_red_max);
    EXPECT_EQ(a[i].mean_makespan, b[i].mean_makespan);
    EXPECT_EQ(a[i].oom_total, b[i].oom_total);
  }
}

TEST(ParallelRunner, FourThreadScenarioMatchesSequentialExactly) {
  expect_identical(run_panel(1), run_panel(4));
}

TEST(ParallelRunner, ThreadCountIsNotPartOfTheResult) {
  expect_identical(run_panel(2), run_panel(7));
}

TEST(ParallelRunner, CloneRunsProduceIdenticalMetricsSnapshots) {
  const wl::FeatureModel features(kSeed);
  sim::SimConfig cfg;
  cfg.seed = kSeed;
  sched::MoePolicy moe(features, kSeed);
  const std::unique_ptr<sim::SchedulingPolicy> clone = moe.clone();
  ASSERT_NE(clone, nullptr);

  Rng rng(21);
  const auto mix = wl::random_mix(5, rng);
  sched::ExperimentRunner runner(cfg, features, 1, 9, 1);
  const auto original = runner.run_mix(mix, moe);
  const auto cloned = runner.run_mix(mix, *clone);
  // MetricsSnapshot::operator== compares every counter, gauge and histogram
  // the engine recorded — the strongest "same simulation" statement we have.
  EXPECT_TRUE(original.result.metrics == cloned.result.metrics);
  EXPECT_EQ(original.normalized.norm_stp, cloned.normalized.norm_stp);
  EXPECT_EQ(original.normalized.antt_reduction, cloned.normalized.antt_reduction);
}

TEST(ParallelRunner, ReplicationMatchesSequentialExactly) {
  const wl::FeatureModel features(kSeed);
  Rng rng(22);
  const auto mix = wl::random_mix(5, rng);
  auto replicate = [&](std::size_t n_threads) {
    sim::SimConfig cfg;
    cfg.seed = 7;
    sched::ExperimentRunner runner(cfg, features, 1, 9, n_threads);
    sched::MoePolicy moe(features, kSeed);
    return runner.run_mix_replicated(mix, moe, 8, 0.05);
  };
  const auto seq = replicate(1);
  const auto par = replicate(4);
  EXPECT_EQ(seq.replays, par.replays);
  EXPECT_EQ(seq.converged, par.converged);
  EXPECT_EQ(seq.stp_mean, par.stp_mean);
  EXPECT_EQ(seq.stp_ci_half, par.stp_ci_half);
  EXPECT_EQ(seq.antt_reduction_mean, par.antt_reduction_mean);
}

// A policy without a clone() override (the base default returns nullptr):
// the runner must fall back to running its cells sequentially on the
// borrowed instance — same results, no races.
class NonCloneablePolicy : public sim::SchedulingPolicy {
 public:
  std::string name() const override { return "noclone"; }
  sim::DispatchMode mode() const override { return sim::DispatchMode::kPairwise; }
  sim::ProfilingCost profile(sim::AppProbe&, sim::MemoryEstimate&) override { return {}; }
};

TEST(ParallelRunner, NonCloneablePolicyStillRunsAndMatchesSequential) {
  auto run = [&](std::size_t n_threads) {
    const wl::FeatureModel features(kSeed);
    sim::SimConfig cfg;
    cfg.seed = kSeed;
    sched::ExperimentRunner runner(cfg, features, 3, 11, n_threads);
    NonCloneablePolicy noclone;
    sched::OraclePolicy oracle;  // cloneable: exercises the mixed fan-out path
    return runner.run_scenario(wl::scenario_by_label("L2"), {&noclone, &oracle});
  };
  expect_identical(run(1), run(4));
}

// A SinkFactory that keeps every per-cell trace in memory and, when asked,
// gates make() on a second distinct thread arriving. The gate turns "traced
// sweeps execute on the pool" into a deterministic assertion: in the parallel
// path the caller claims one cell and at least one pool worker claims
// another, so two threads reach make(); a sequential fallback would only
// ever present one thread and the gate times out.
class MemorySinkFactory final : public obs::SinkFactory {
 public:
  explicit MemorySinkFactory(std::size_t min_threads) : min_threads_(min_threads) {}

  std::unique_ptr<obs::EventSink> make(std::string_view label) override {
    std::unique_lock<std::mutex> lock(mu_);
    threads_.insert(std::this_thread::get_id());
    cv_.notify_all();
    if (!cv_.wait_for(lock, std::chrono::seconds(60),
                      [&] { return threads_.size() >= min_threads_; }))
      gate_ok_ = false;
    return std::make_unique<CaptureSink>(*this, std::string(label));
  }

  std::map<std::string, std::string> traces() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return traces_;
  }
  bool gate_ok() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return gate_ok_;
  }

 private:
  class CaptureSink final : public obs::EventSink {
   public:
    CaptureSink(MemorySinkFactory& parent, std::string label)
        : parent_(parent), label_(std::move(label)), inner_(os_) {}
    ~CaptureSink() override { close(); }
    void emit(const obs::Event& event) override { inner_.emit(event); }
    void close() override {
      if (closed_) return;
      closed_ = true;
      inner_.close();
      parent_.record(label_, os_.str());
    }

   private:
    MemorySinkFactory& parent_;
    std::string label_;
    std::ostringstream os_;
    obs::JsonlSink inner_;
    bool closed_ = false;
  };

  void record(const std::string& label, std::string bytes) {
    const std::lock_guard<std::mutex> lock(mu_);
    traces_[label] = std::move(bytes);
  }

  std::size_t min_threads_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::set<std::thread::id> threads_;
  std::map<std::string, std::string> traces_;
  bool gate_ok_ = true;
};

TEST(ParallelRunner, TracedSweepFansOutAndTracesAreThreadCountInvariant) {
  auto run = [&](std::size_t n_threads, MemorySinkFactory& factory) {
    const wl::FeatureModel features(kSeed);
    sim::SimConfig cfg;
    cfg.seed = kSeed;
    sched::ExperimentRunner runner(cfg, features, 3, 11, n_threads);
    runner.set_sink_factory(&factory);
    sched::PairwisePolicy pairwise;
    sched::MoePolicy moe(features, kSeed);
    return runner.run_scenario(wl::scenario_by_label("L5"), {&pairwise, &moe});
  };

  MemorySinkFactory seq_factory(1), par_factory(2);
  const auto seq = run(1, seq_factory);
  const auto par = run(4, par_factory);

  // Aggregate results: same contract as the untraced sweeps above.
  expect_identical(seq, par);
  // The 4-thread sweep really ran cells on the pool: two distinct threads
  // reached the factory before the gate's timeout.
  EXPECT_TRUE(par_factory.gate_ok()) << "traced sweep fell back to one thread";

  // Per-cell traces: one per (policy, mix), byte-identical across thread
  // counts, and labelled so a cell's file can be found after a sweep.
  const auto seq_traces = seq_factory.traces();
  const auto par_traces = par_factory.traces();
  ASSERT_EQ(seq_traces.size(), 2u * 3u);
  ASSERT_EQ(par_traces.size(), seq_traces.size());
  EXPECT_EQ(seq_traces.count("L5/Ours (MoE)/mix0"), 1u);
  for (const auto& [label, bytes] : seq_traces) {
    const auto it = par_traces.find(label);
    ASSERT_NE(it, par_traces.end()) << label;
    EXPECT_FALSE(bytes.empty()) << label;
    EXPECT_TRUE(bytes == it->second) << "trace bytes diverged for " << label;
  }
}

TEST(ParallelRunner, CloneSharesMoeDiagnostics) {
  const wl::FeatureModel features(kSeed);
  sim::SimConfig cfg;
  cfg.seed = kSeed;
  sched::ExperimentRunner runner(cfg, features, 1, 9, 1);
  sched::MoePolicy moe(features, kSeed);
  Rng rng(23);
  const auto mix = wl::random_mix(4, rng);
  (void)runner.run_mix(mix, *moe.clone());
  // Selections made by a clone are visible on the original (the ablation
  // bench reads fallback/selection counts after parallel runs).
  std::size_t selections = 0;
  for (const auto& [expert, count] : moe.selection_counts()) selections += count;
  EXPECT_EQ(selections, mix.size());
}

}  // namespace
