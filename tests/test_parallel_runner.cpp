// The parallel experiment runner's headline contract: any thread count
// produces byte-identical results to a sequential run — scenario aggregates,
// replication outcomes, and engine metrics snapshots alike.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "obs/registry.h"
#include "sched/experiment.h"
#include "sched/policies_basic.h"
#include "sched/policies_learned.h"
#include "workloads/features.h"
#include "workloads/mixes.h"

namespace {

using namespace smoe;

constexpr std::uint64_t kSeed = 2017;

std::vector<sched::SchemeScenarioResult> run_panel(std::size_t n_threads) {
  const wl::FeatureModel features(kSeed);
  sim::SimConfig cfg;
  cfg.seed = kSeed;
  sched::ExperimentRunner runner(cfg, features, 3, 11, n_threads);
  sched::PairwisePolicy pairwise;
  sched::MoePolicy moe(features, kSeed);
  sched::OraclePolicy oracle;
  return runner.run_scenario(wl::scenario_by_label("L5"), {&pairwise, &moe, &oracle});
}

void expect_identical(const std::vector<sched::SchemeScenarioResult>& a,
                      const std::vector<sched::SchemeScenarioResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].scheme);
    EXPECT_EQ(a[i].scheme, b[i].scheme);
    EXPECT_EQ(a[i].scenario, b[i].scenario);
    // Exact equality: parallel execution must be bit-identical, not close.
    EXPECT_EQ(a[i].stp_geomean, b[i].stp_geomean);
    EXPECT_EQ(a[i].stp_min, b[i].stp_min);
    EXPECT_EQ(a[i].stp_max, b[i].stp_max);
    EXPECT_EQ(a[i].antt_red_mean, b[i].antt_red_mean);
    EXPECT_EQ(a[i].antt_red_min, b[i].antt_red_min);
    EXPECT_EQ(a[i].antt_red_max, b[i].antt_red_max);
    EXPECT_EQ(a[i].mean_makespan, b[i].mean_makespan);
    EXPECT_EQ(a[i].oom_total, b[i].oom_total);
  }
}

TEST(ParallelRunner, FourThreadScenarioMatchesSequentialExactly) {
  expect_identical(run_panel(1), run_panel(4));
}

TEST(ParallelRunner, ThreadCountIsNotPartOfTheResult) {
  expect_identical(run_panel(2), run_panel(7));
}

TEST(ParallelRunner, CloneRunsProduceIdenticalMetricsSnapshots) {
  const wl::FeatureModel features(kSeed);
  sim::SimConfig cfg;
  cfg.seed = kSeed;
  sched::MoePolicy moe(features, kSeed);
  const std::unique_ptr<sim::SchedulingPolicy> clone = moe.clone();
  ASSERT_NE(clone, nullptr);

  Rng rng(21);
  const auto mix = wl::random_mix(5, rng);
  sched::ExperimentRunner runner(cfg, features, 1, 9, 1);
  const auto original = runner.run_mix(mix, moe);
  const auto cloned = runner.run_mix(mix, *clone);
  // MetricsSnapshot::operator== compares every counter, gauge and histogram
  // the engine recorded — the strongest "same simulation" statement we have.
  EXPECT_TRUE(original.result.metrics == cloned.result.metrics);
  EXPECT_EQ(original.normalized.norm_stp, cloned.normalized.norm_stp);
  EXPECT_EQ(original.normalized.antt_reduction, cloned.normalized.antt_reduction);
}

TEST(ParallelRunner, ReplicationMatchesSequentialExactly) {
  const wl::FeatureModel features(kSeed);
  Rng rng(22);
  const auto mix = wl::random_mix(5, rng);
  auto replicate = [&](std::size_t n_threads) {
    sim::SimConfig cfg;
    cfg.seed = 7;
    sched::ExperimentRunner runner(cfg, features, 1, 9, n_threads);
    sched::MoePolicy moe(features, kSeed);
    return runner.run_mix_replicated(mix, moe, 8, 0.05);
  };
  const auto seq = replicate(1);
  const auto par = replicate(4);
  EXPECT_EQ(seq.replays, par.replays);
  EXPECT_EQ(seq.converged, par.converged);
  EXPECT_EQ(seq.stp_mean, par.stp_mean);
  EXPECT_EQ(seq.stp_ci_half, par.stp_ci_half);
  EXPECT_EQ(seq.antt_reduction_mean, par.antt_reduction_mean);
}

// A policy without a clone() override (the base default returns nullptr):
// the runner must fall back to running its cells sequentially on the
// borrowed instance — same results, no races.
class NonCloneablePolicy : public sim::SchedulingPolicy {
 public:
  std::string name() const override { return "noclone"; }
  sim::DispatchMode mode() const override { return sim::DispatchMode::kPairwise; }
  sim::ProfilingCost profile(sim::AppProbe&, sim::MemoryEstimate&) override { return {}; }
};

TEST(ParallelRunner, NonCloneablePolicyStillRunsAndMatchesSequential) {
  auto run = [&](std::size_t n_threads) {
    const wl::FeatureModel features(kSeed);
    sim::SimConfig cfg;
    cfg.seed = kSeed;
    sched::ExperimentRunner runner(cfg, features, 3, 11, n_threads);
    NonCloneablePolicy noclone;
    sched::OraclePolicy oracle;  // cloneable: exercises the mixed fan-out path
    return runner.run_scenario(wl::scenario_by_label("L2"), {&noclone, &oracle});
  };
  expect_identical(run(1), run(4));
}

TEST(ParallelRunner, CloneSharesMoeDiagnostics) {
  const wl::FeatureModel features(kSeed);
  sim::SimConfig cfg;
  cfg.seed = kSeed;
  sched::ExperimentRunner runner(cfg, features, 1, 9, 1);
  sched::MoePolicy moe(features, kSeed);
  Rng rng(23);
  const auto mix = wl::random_mix(4, rng);
  (void)runner.run_mix(mix, *moe.clone());
  // Selections made by a clone are visible on the original (the ablation
  // bench reads fallback/selection counts after parallel runs).
  std::size_t selections = 0;
  for (const auto& [expert, count] : moe.selection_counts()) selections += count;
  EXPECT_EQ(selections, mix.size());
}

}  // namespace
