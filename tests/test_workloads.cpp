// Tests for the benchmark registry, the feature model and the mix generator.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.h"
#include "common/stats.h"
#include "workloads/features.h"
#include "workloads/mixes.h"
#include "workloads/suites.h"

namespace {

using namespace smoe;

TEST(Suites, Exactly44SparkBenchmarksWithUniqueNames) {
  const auto& all = wl::all_spark_benchmarks();
  EXPECT_EQ(all.size(), 44u);
  std::set<std::string> names;
  for (const auto& b : all) names.insert(b.name);
  EXPECT_EQ(names.size(), 44u);
}

TEST(Suites, SuiteCountsMatchPaper) {
  std::map<wl::Suite, int> counts;
  for (const auto& b : wl::all_spark_benchmarks()) ++counts[b.suite];
  EXPECT_EQ(counts[wl::Suite::kHiBench], 9);
  EXPECT_EQ(counts[wl::Suite::kBigDataBench], 7);
  EXPECT_EQ(counts[wl::Suite::kHiBench] + counts[wl::Suite::kBigDataBench], 16);
  EXPECT_EQ(counts[wl::Suite::kSparkPerf] + counts[wl::Suite::kSparkBench], 28);
}

TEST(Suites, TrainingSetIsHiBenchPlusBigDataBench) {
  const auto training = wl::training_benchmarks();
  EXPECT_EQ(training.size(), 16u);
  for (const auto& b : training)
    EXPECT_TRUE(b.suite == wl::Suite::kHiBench || b.suite == wl::Suite::kBigDataBench);
}

TEST(Suites, AllThreeFamiliesRepresentedInTraining) {
  std::set<int> families;
  for (const auto& b : wl::training_benchmarks()) families.insert(b.family_label());
  EXPECT_EQ(families.size(), 3u);
}

TEST(Suites, FindBenchmarkByName) {
  EXPECT_EQ(wl::find_benchmark("HB.Sort").suite, wl::Suite::kHiBench);
  EXPECT_THROW(wl::find_benchmark("No.Such"), PreconditionError);
}

TEST(Suites, PaperExactFitsPreserved) {
  // HB.Sort and HB.PageRank keep the exact fits reported in Section 3.1.
  const auto& sort = wl::find_benchmark("HB.Sort");
  EXPECT_EQ(sort.true_kind, ml::CurveKind::kExponential);
  EXPECT_NEAR(sort.true_params.m, 5.768, 1e-9);
  const auto& pr = wl::find_benchmark("HB.PageRank");
  EXPECT_EQ(pr.true_kind, ml::CurveKind::kNapierianLog);
  EXPECT_NEAR(pr.true_params.b, 1.79, 1e-9);
  // y(100 GB) ~ 16.333 + 1.79*ln(100) ~ 24.6 GB, matching Fig. 3b.
  EXPECT_NEAR(pr.footprint(items_from_gib(100)), 16.333 + 1.79 * std::log(100.0), 1e-6);
}

TEST(Suites, FootprintMonotoneForEveryBenchmark) {
  for (const auto& b : wl::all_spark_benchmarks()) {
    double prev = 0;
    for (const double x : {300.0, 3000.0, 30000.0, 300000.0, 1048576.0}) {
      const double y = b.footprint(x);
      // Non-decreasing everywhere (exponential curves saturate flat)...
      EXPECT_GE(y, prev) << b.name << " at " << x;
      prev = y;
    }
    // Footprints stay within a node's RAM+swap at per-executor chunk sizes
    // (the engine never assigns more than ~90k items to one executor).
    EXPECT_LT(b.footprint(90000.0), 120.0) << b.name;
    // ...and strictly growing where every family is still climbing.
    EXPECT_GT(b.footprint(900.0), b.footprint(300.0)) << b.name;
  }
}

TEST(Suites, ItemsForBudgetRoundTrips) {
  for (const auto& b : wl::all_spark_benchmarks()) {
    const double y = b.footprint(20000.0);
    const double x = b.items_for_budget(y);
    if (std::isfinite(x)) {
      EXPECT_NEAR(x, 20000.0, 1.0) << b.name;
    }
  }
}

TEST(Suites, CpuLoadsMatchFig13Shape) {
  std::vector<double> loads;
  for (const auto& b : wl::all_spark_benchmarks()) loads.push_back(b.cpu_load_iso);
  // "The CPU load for most of the 44 benchmarks is under 40%."
  std::size_t under40 = 0;
  for (const double l : loads) {
    EXPECT_GT(l, 0.0);
    EXPECT_LT(l, 0.65);
    if (l < 0.40) ++under40;
  }
  EXPECT_GE(under40, 30u);
  EXPECT_LT(mean(loads), 0.40);
}

TEST(Suites, ExclusionRulesCoverEquivalentImplementations) {
  const auto ex = wl::excluded_from_training("HB.Sort");
  EXPECT_NE(std::find(ex.begin(), ex.end(), "HB.Sort"), ex.end());
  EXPECT_NE(std::find(ex.begin(), ex.end(), "BDB.Sort"), ex.end());
  const auto km = wl::excluded_from_training("SP.Kmeans");
  EXPECT_NE(std::find(km.begin(), km.end(), "HB.Kmeans"), km.end());
  EXPECT_NE(std::find(km.begin(), km.end(), "BDB.Kmeans"), km.end());
  // A benchmark with no twins excludes only itself.
  EXPECT_EQ(wl::excluded_from_training("SP.Gmm").size(), 1u);
}

TEST(Suites, ParsecRegistry) {
  const auto& parsec = wl::parsec_benchmarks();
  EXPECT_EQ(parsec.size(), 12u);
  for (const auto& p : parsec) {
    EXPECT_GT(p.cpu_load, 0.5);  // compute-bound
    EXPECT_LT(p.memory, 5.0);    // small footprints
    EXPECT_GT(p.runtime_iso, 0.0);
  }
}

TEST(Suites, InputClasses) {
  EXPECT_LT(wl::items_for_input_class(wl::InputClass::kSmall),
            wl::items_for_input_class(wl::InputClass::kMedium));
  EXPECT_LT(wl::items_for_input_class(wl::InputClass::kMedium),
            wl::items_for_input_class(wl::InputClass::kLarge));
  EXPECT_NEAR(gib_from_items(wl::items_for_input_class(wl::InputClass::kLarge)), 1024.0, 1.0);
}

// ---- feature model ----

TEST(Features, TableHas22EntriesInPaperOrder) {
  const auto table = wl::raw_feature_table();
  EXPECT_EQ(table.size(), wl::kNumRawFeatures);
  EXPECT_STREQ(table[0].abbr, "L1_TCM");
  EXPECT_STREQ(table[1].abbr, "L1_DCM");
  EXPECT_STREQ(table[2].abbr, "vcache");
  EXPECT_STREQ(table[21].abbr, "SY");
}

TEST(Features, SampleHasCorrectDimensionAndIsFinite) {
  const wl::FeatureModel model(1);
  Rng rng(2);
  const auto v = model.sample(wl::find_benchmark("HB.Sort"), rng);
  ASSERT_EQ(v.size(), wl::kNumRawFeatures);
  for (const double x : v) EXPECT_TRUE(std::isfinite(x));
}

TEST(Features, LatentIsDeterministicPerBenchmark) {
  const wl::FeatureModel model(1);
  const auto a = model.latent(wl::find_benchmark("SP.Gmm"));
  const auto b = model.latent(wl::find_benchmark("SP.Gmm"));
  EXPECT_EQ(a, b);
  const auto c = model.latent(wl::find_benchmark("SP.ALS"));
  EXPECT_NE(a, c);
}

TEST(Features, RepeatedRunsClusterTightly) {
  // The paper reports Pearson > 0.9999 within clusters; repeated profiling
  // runs of one program must be nearly identical relative to cross-cluster
  // differences.
  const wl::FeatureModel model(1);
  Rng rng(3);
  const auto& a = wl::find_benchmark("HB.Sort");        // exponential cluster
  const auto& b = wl::find_benchmark("HB.PageRank");    // log cluster
  const auto run1 = model.sample(a, rng);
  const auto run2 = model.sample(a, rng);
  const auto other = model.sample(b, rng);
  const double within = ml::euclidean_distance(run1, run2);
  const double between = ml::euclidean_distance(run1, other);
  EXPECT_LT(within * 3.0, between);
}

TEST(Features, SameFamilyClustersCloserThanCrossFamily) {
  const wl::FeatureModel model(1);
  const auto za = model.latent(wl::find_benchmark("HB.Sort"));
  const auto zb = model.latent(wl::find_benchmark("BDB.Grep"));      // same family
  const auto zc = model.latent(wl::find_benchmark("BDB.PageRank"));  // different family
  auto dist2 = [](const auto& x, const auto& y) {
    return std::hypot(x[0] - y[0], x[1] - y[1]);
  };
  EXPECT_LT(dist2(za, zb), dist2(za, zc));
}

// ---- mixes ----

TEST(Mixes, ScenarioTableMatchesTable3) {
  const auto sc = wl::scenarios();
  ASSERT_EQ(sc.size(), 10u);
  EXPECT_EQ(sc[0].label, "L1");
  EXPECT_EQ(sc[0].n_apps, 2u);
  EXPECT_EQ(sc[9].label, "L10");
  EXPECT_EQ(sc[9].n_apps, 30u);
  const std::vector<std::size_t> expected = {2, 6, 7, 9, 11, 13, 19, 23, 26, 30};
  for (std::size_t i = 0; i < sc.size(); ++i) EXPECT_EQ(sc[i].n_apps, expected[i]);
  EXPECT_EQ(wl::scenario_by_label("L7").n_apps, 19u);
  EXPECT_THROW(wl::scenario_by_label("L11"), PreconditionError);
}

TEST(Mixes, RandomMixSizesAndValidNames) {
  Rng rng(4);
  const auto mix = wl::random_mix(9, rng);
  EXPECT_EQ(mix.size(), 9u);
  for (const auto& a : mix) {
    EXPECT_NO_THROW(wl::find_benchmark(a.benchmark));
    EXPECT_GT(a.input_items, 0.0);
  }
}

TEST(Mixes, ScenarioBatchCoversAllBenchmarks) {
  const auto mixes = wl::scenario_mixes(wl::scenario_by_label("L5"), 20, 99);
  ASSERT_EQ(mixes.size(), 20u);
  std::set<std::string> seen;
  for (const auto& mix : mixes) {
    EXPECT_EQ(mix.size(), 11u);
    for (const auto& a : mix) seen.insert(a.benchmark);
  }
  EXPECT_EQ(seen.size(), 44u);  // "all benchmarks are included in each scenario"
}

TEST(Mixes, BatchesAreDeterministicInSeed) {
  const auto a = wl::scenario_mixes(wl::scenario_by_label("L3"), 5, 7);
  const auto b = wl::scenario_mixes(wl::scenario_by_label("L3"), 5, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t m = 0; m < a.size(); ++m)
    for (std::size_t i = 0; i < a[m].size(); ++i) {
      EXPECT_EQ(a[m][i].benchmark, b[m][i].benchmark);
      EXPECT_EQ(a[m][i].input_items, b[m][i].input_items);
    }
}

TEST(Mixes, Table4MixMatchesPaper) {
  const auto mix = wl::table4_mix();
  ASSERT_EQ(mix.size(), 30u);
  EXPECT_EQ(mix[0].benchmark, "BDB.WordCount");
  EXPECT_EQ(mix[7].benchmark, "HB.TeraSort");
  EXPECT_EQ(mix[20].benchmark, "SP.CoreRDD");
  EXPECT_EQ(mix[29].benchmark, "HB.Kmeans");
  EXPECT_EQ(mix[20].input_items, wl::items_for_input_class(wl::InputClass::kSmall));
  EXPECT_EQ(mix[7].input_items, wl::items_for_input_class(wl::InputClass::kLarge));
  for (const auto& a : mix) EXPECT_NO_THROW(wl::find_benchmark(a.benchmark));
}

}  // namespace
