// Tests for the mixture-of-experts core: experts, pool, trainer, predictor,
// and the extensibility story (registering a custom expert).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/stats.h"
#include "core/predictor.h"
#include "sched/policies_learned.h"
#include "sched/training_data.h"
#include "sparksim/app_probe.h"
#include "workloads/features.h"
#include "workloads/suites.h"

namespace {

using namespace smoe;

TEST(Experts, BuiltinNamesAndFormulas) {
  const auto power = core::make_builtin_expert(ml::CurveKind::kPowerLaw);
  EXPECT_EQ(power->name(), "PowerLaw");
  EXPECT_NE(power->formula().find("x^b"), std::string::npos);
  const auto log = core::make_builtin_expert(ml::CurveKind::kNapierianLog);
  EXPECT_NE(log->formula().find("ln(x)"), std::string::npos);
}

TEST(Experts, EvalCalibrateInverseAgreeWithRegression) {
  const auto expert = core::make_builtin_expert(ml::CurveKind::kExponential);
  const core::Params truth = {6.0, 0.002};
  const double y1 = expert->eval(truth, 500);
  const double y2 = expert->eval(truth, 2000);
  const core::Params cal = expert->calibrate(500, y1, 2000, y2);
  EXPECT_NEAR(expert->eval(cal, 50000), expert->eval(truth, 50000), 1e-3);
  EXPECT_NEAR(expert->inverse(truth, y1), 500, 1.0);
}

TEST(ExpertPool, PaperDefaultHasThreeExpertsInCurveKindOrder) {
  const core::ExpertPool pool = core::ExpertPool::paper_default();
  ASSERT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.at(static_cast<int>(ml::CurveKind::kPowerLaw)).name(), "PowerLaw");
  EXPECT_EQ(pool.at(static_cast<int>(ml::CurveKind::kExponential)).name(), "Exponential");
  EXPECT_EQ(pool.at(static_cast<int>(ml::CurveKind::kNapierianLog)).name(), "NapierianLog");
  EXPECT_THROW(pool.at(3), PreconditionError);
  EXPECT_THROW(pool.at(-1), PreconditionError);
}

TEST(ExpertPool, BestFitPicksTrueFamily) {
  const core::ExpertPool pool = core::ExpertPool::paper_default();
  std::vector<double> xs, ys;
  for (double x = 300; x < 1e6; x *= 3) {
    xs.push_back(x);
    ys.push_back(ml::curve_eval(ml::CurveKind::kNapierianLog, {5.0, 1.8}, x));
  }
  const auto best = pool.best_fit(xs, ys);
  EXPECT_EQ(best.index, static_cast<int>(ml::CurveKind::kNapierianLog));
  EXPECT_GT(best.fit.r2, 0.999);
}

// The paper's extensibility claim: a new expert can be plugged in without
// touching the existing ones. A square-root law y = m * sqrt(x) + b.
class SqrtLawExpert final : public core::MemoryExpert {
 public:
  std::string name() const override { return "SqrtLaw"; }
  std::string formula() const override { return "y = m * sqrt(x) + b"; }
  GiB eval(core::Params p, Items x) const override { return p.m * std::sqrt(x) + p.b; }
  Items inverse(core::Params p, GiB budget) const override {
    if (p.m <= 0) return budget >= p.b ? std::numeric_limits<double>::infinity() : 0.0;
    if (budget <= p.b) return 0.0;
    const double r = (budget - p.b) / p.m;
    return r * r;
  }
  core::FitResult fit(std::span<const double> xs, std::span<const double> ys) const override {
    // Linear least squares in sqrt(x).
    std::vector<double> sx(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) sx[i] = std::sqrt(xs[i]);
    const ml::LinearFit lf = ml::ols(sx, ys);
    core::FitResult out;
    out.params = {lf.slope, lf.intercept};
    std::vector<double> pred(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) pred[i] = eval(out.params, xs[i]);
    out.r2 = smoe::r_squared(ys, pred);
    return out;
  }
  core::Params calibrate(Items x1, GiB y1, Items x2, GiB y2) const override {
    const double m = (y2 - y1) / (std::sqrt(x2) - std::sqrt(x1));
    return {m, y1 - m * std::sqrt(x1)};
  }
};

TEST(ExpertPool, CustomExpertWinsOnItsOwnCurve) {
  core::ExpertPool pool = core::ExpertPool::paper_default();
  const int idx = pool.add(std::make_unique<SqrtLawExpert>());
  EXPECT_EQ(idx, 3);
  std::vector<double> xs, ys;
  for (double x = 300; x < 1e6; x *= 2.5) {
    xs.push_back(x);
    ys.push_back(0.05 * std::sqrt(x) + 2.0);
  }
  const auto best = pool.best_fit(xs, ys);
  EXPECT_EQ(best.index, idx);
  EXPECT_NEAR(best.fit.params.m, 0.05, 1e-6);
  EXPECT_NEAR(best.fit.params.b, 2.0, 1e-4);
}

TEST(MemoryModel, UncalibratedModelThrows) {
  core::MemoryModel model;
  EXPECT_FALSE(model.valid());
  EXPECT_THROW(model.footprint(100), PreconditionError);
  EXPECT_THROW(model.items_for_budget(10), PreconditionError);
  EXPECT_THROW(model.expert(), PreconditionError);
}

// ---- trainer ----

TEST(Trainer, LabelsEveryTrainingProgramWithItsTrueFamily) {
  const wl::FeatureModel features(1);
  const auto examples = sched::make_training_set(features, 2);
  core::ExpertPool pool = core::ExpertPool::paper_default();
  const core::SelectorModel model = core::train_selector(pool, examples);
  ASSERT_EQ(model.programs.size(), 16u);
  for (const auto& p : model.programs) {
    EXPECT_EQ(p.expert_index, wl::find_benchmark(p.name).family_label()) << p.name;
    EXPECT_GT(p.fit.r2, 0.99) << p.name;
    EXPECT_FALSE(p.pc_features.empty());
  }
}

TEST(Trainer, PcaKeepsAtMostFiveComponentsCovering95Percent) {
  const wl::FeatureModel features(1);
  const auto examples = sched::make_training_set(features, 2);
  core::ExpertPool pool = core::ExpertPool::paper_default();
  const core::SelectorModel model = core::train_selector(pool, examples);
  EXPECT_LE(model.pca.n_components(), 5u);
  double total = 0;
  for (const double v : model.pca.explained_variance_ratio()) total += v;
  EXPECT_GE(total, 0.90);
}

TEST(Trainer, RejectsDegenerateInputs) {
  core::ExpertPool pool = core::ExpertPool::paper_default();
  EXPECT_THROW(core::train_selector(pool, {}), PreconditionError);
  core::ExpertPool empty;
  const wl::FeatureModel features(1);
  const auto examples = sched::make_training_set(features, 2);
  EXPECT_THROW(core::train_selector(empty, examples), PreconditionError);
}

// ---- predictor ----

TEST(Predictor, SelectsAndCalibratesUnseenApplication) {
  const wl::FeatureModel features(1);
  sched::SelectorCache cache(features, 2);
  const auto& entry = cache.for_test_benchmark("SB.TriangleCount");
  const core::MoePredictor predictor(entry.pool, entry.selector);

  const auto& bench = wl::find_benchmark("SB.TriangleCount");
  sim::AppProbe probe(bench, features, 286720, 3);
  const core::Selection sel = predictor.select(probe.raw_features());
  EXPECT_EQ(sel.expert_index, bench.family_label());
  EXPECT_FALSE(sel.nearest_program.empty());
  EXPECT_GT(sel.distance, 0.0);

  const core::CalibrationProbes probes = sched::take_calibration_probes(probe);
  const core::MemoryModel model = predictor.calibrate(sel, probes);
  const double predicted = model.footprint(286720);
  const double truth = bench.footprint(286720);
  EXPECT_NEAR(predicted, truth, 0.12 * truth);  // paper: ~5% average error
}

TEST(Predictor, ConfidenceThresholdGatesFarApplications) {
  const wl::FeatureModel features(1);
  sched::SelectorCache cache(features, 2);
  const auto& entry = cache.for_test_benchmark("SP.Gmm");
  const core::MoePredictor strict(entry.pool, entry.selector, /*confidence_distance=*/1e-9);
  const core::MoePredictor lax(entry.pool, entry.selector, /*confidence_distance=*/100.0);
  const auto& bench = wl::find_benchmark("SP.Gmm");
  sim::AppProbe probe(bench, features, 30720, 4);
  const auto raw = probe.raw_features();
  EXPECT_FALSE(strict.confident(strict.select(raw)));
  EXPECT_TRUE(lax.confident(lax.select(raw)));
}

TEST(Predictor, InvalidSelectionRejected) {
  const wl::FeatureModel features(1);
  sched::SelectorCache cache(features, 2);
  const auto& entry = cache.for_test_benchmark("SP.Gmm");
  const core::MoePredictor predictor(entry.pool, entry.selector);
  core::Selection bad;
  EXPECT_THROW(predictor.calibrate(bad, {1, 1, 2, 2}), PreconditionError);
  EXPECT_THROW(core::MoePredictor(entry.pool, entry.selector, 0.0), PreconditionError);
}

TEST(SelectorCache, HonoursLeaveOneOutExclusions) {
  const wl::FeatureModel features(1);
  sched::SelectorCache cache(features, 2);
  const auto& entry = cache.for_test_benchmark("HB.Sort");
  for (const auto& p : entry.selector.programs) {
    EXPECT_NE(p.name, "HB.Sort");
    EXPECT_NE(p.name, "BDB.Sort");  // equivalent implementation
  }
  EXPECT_EQ(entry.selector.programs.size(), 14u);
  // A benchmark with no twins trains on all 16.
  EXPECT_EQ(cache.for_test_benchmark("SP.Gmm").selector.programs.size(), 16u);
}

TEST(SelectorCache, RepeatedLookupsReturnTheSameEntry) {
  const wl::FeatureModel features(1);
  sched::SelectorCache cache(features, 2);
  const auto& a = cache.for_test_benchmark("SP.Gmm");
  const auto& b = cache.for_test_benchmark("SP.Gmm");
  EXPECT_EQ(&a, &b);
  // Distinct exclusion sets get distinct selectors.
  const auto& c = cache.for_test_benchmark("HB.Sort");
  EXPECT_NE(&a, &c);
}

}  // namespace
