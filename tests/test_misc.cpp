// Remaining coverage: the umbrella header, unit conversions, the feature
// model's noise-scale knob, and fuzz-style robustness of the selector loader.
#include <gtest/gtest.h>

#include <sstream>

#include "smoe.h"  // the umbrella header must compile and suffice on its own

namespace {

using namespace smoe;

TEST(Units, ItemGibRoundTrip) {
  EXPECT_DOUBLE_EQ(items_from_gib(1.0), 1024.0);
  EXPECT_DOUBLE_EQ(gib_from_items(1024.0), 1.0);
  for (const double gib : {0.3, 30.0, 280.0, 1024.0})
    EXPECT_NEAR(gib_from_items(items_from_gib(gib)), gib, 1e-12);
}

TEST(Units, InputClassesInBytesTerms) {
  // ~300 MB, ~30 GB, ~1 TB in items of ~1 MiB.
  EXPECT_NEAR(wl::items_for_input_class(wl::InputClass::kSmall) * kBytesPerItem / 1e6, 314.6,
              1.0);
  EXPECT_NEAR(gib_from_items(wl::items_for_input_class(wl::InputClass::kMedium)), 30.0, 0.01);
}

TEST(UmbrellaHeader, CoreWorkflowCompilesAndRuns) {
  const wl::FeatureModel features(1);
  core::ExpertPool pool = core::ExpertPool::paper_default();
  const core::SelectorModel selector =
      core::train_selector(pool, sched::make_training_set(features, 2));
  const core::MoePredictor predictor(pool, selector);
  Rng rng(3);
  const core::Selection sel =
      predictor.select(features.sample(wl::find_benchmark("SB.Hive"), rng));
  EXPECT_GE(sel.expert_index, 0);
}

TEST(FeatureModel, NoiseScaleWidensRunSpread) {
  const wl::FeatureModel features(1);
  const auto& bench = wl::find_benchmark("HB.Sort");
  auto spread = [&](double scale) {
    Rng rng(4);
    const auto a = features.sample(bench, rng, scale);
    const auto b = features.sample(bench, rng, scale);
    return ml::euclidean_distance(a, b);
  };
  EXPECT_LT(spread(1.0), spread(10.0));
  EXPECT_NEAR(spread(0.0), 0.0, 1e-12);
  Rng rng(5);
  EXPECT_THROW(features.sample(bench, rng, -1.0), PreconditionError);
}

TEST(SerializeFuzz, MutatedPayloadsNeverCrash) {
  const wl::FeatureModel features(1);
  core::ExpertPool pool = core::ExpertPool::paper_default();
  const core::SelectorModel model =
      core::train_selector(pool, sched::make_training_set(features, 2));
  std::stringstream buffer;
  core::save_selector(model, buffer);
  const std::string clean = buffer.str();

  Rng rng(6);
  int loaded_ok = 0, rejected = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = clean;
    // Flip a handful of characters to printable garbage.
    const int flips = static_cast<int>(rng.uniform_int(1, 6));
    for (int f = 0; f < flips; ++f) {
      const auto pos =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(clean.size()) - 1));
      mutated[pos] = static_cast<char>(rng.uniform_int(33, 126));
    }
    std::stringstream in(mutated);
    try {
      const core::SelectorModel m = core::load_selector(in);
      // If it parsed, it must at least be structurally usable.
      EXPECT_FALSE(m.programs.empty());
      ++loaded_ok;
    } catch (const core::SerializationError&) {
      ++rejected;
    } catch (const PreconditionError&) {
      ++rejected;  // numeric garbage caught by component validation
    }
  }
  EXPECT_EQ(loaded_ok + rejected, 200);
  EXPECT_GT(rejected, 50);  // most mutations must be detected
}

}  // namespace
