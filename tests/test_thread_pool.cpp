// ThreadPool unit tests: exception propagation, empty job sets, nested
// submission, and the SMOE_THREADS override.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"

namespace {

using namespace smoe;

TEST(ThreadPool, SizeIsAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  ThreadPool one(1);
  EXPECT_EQ(one.size(), 1u);
  ThreadPool four(4);
  EXPECT_EQ(four.size(), 4u);
}

TEST(ThreadPool, ParallelForEachEmptyJobSetReturnsImmediately) {
  ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for_each(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForEachVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for_each(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForEachWorksOnSizeOnePool) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for_each(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, LowestIndexExceptionWinsDeterministically) {
  ThreadPool pool(4);
  for (int repeat = 0; repeat < 20; ++repeat) {
    std::atomic<int> attempted{0};
    try {
      pool.parallel_for_each(64, [&](std::size_t i) {
        attempted.fetch_add(1);
        if (i == 7 || i == 23 || i == 55)
          throw std::runtime_error("job " + std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "job 7");
    }
    // Every index is still attempted even after a failure.
    EXPECT_EQ(attempted.load(), 64);
  }
}

TEST(ThreadPool, SubmitDeliversValueThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(pool.wait(std::move(future)), 42);
}

TEST(ThreadPool, SubmitDeliversExceptionThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::logic_error("boom"); });
  EXPECT_THROW(pool.wait(std::move(future)), std::logic_error);
}

TEST(ThreadPool, NestedSubmitAndWaitDoesNotDeadlock) {
  // Every outer job submits an inner job and waits for it. With 4 workers and
  // 8 outer jobs a naive future.get() could leave all workers blocked; wait()
  // helps drain the queue, so this must complete.
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for_each(8, [&](std::size_t i) {
    auto inner = pool.submit([i] { return static_cast<int>(i) + 1; });
    total.fetch_add(pool.wait(std::move(inner)));
  });
  EXPECT_EQ(total.load(), 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8);
}

TEST(ThreadPool, NestedParallelForEachDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for_each(4, [&](std::size_t) {
    pool.parallel_for_each(4, [&](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, DefaultThreadsHonorsEnvironmentOverride) {
  ::setenv("SMOE_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_threads(), 3u);
  EXPECT_EQ(ThreadPool(0).size(), 3u);
  ::setenv("SMOE_THREADS", "junk", 1);
  EXPECT_GE(ThreadPool::default_threads(), 1u);  // junk falls back to hardware
  ::unsetenv("SMOE_THREADS");
  EXPECT_GE(ThreadPool::default_threads(), 1u);
}

}  // namespace
