// Differential tests for the incremental resource monitor: sparse ingestion
// with lazy ring back-fill must be *bit-identical* — not just close — to the
// legacy dense per-tick recompute, for every node, at every report count,
// regardless of when queries interleave with records (queries materialize
// lazy rows, so a query must never perturb later answers). A deterministic
// fuzz loop drives randomized dirty sets, values, window shapes and query
// schedules against the reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "sparksim/monitor.h"

namespace {

using namespace smoe;
using namespace smoe::sim;

/// The legacy dense monitor, verbatim: slot-major ring, every node written
/// every tick, windowed average summed over slots 0..filled-1 in slot order.
class DenseReference {
 public:
  DenseReference(std::size_t n_nodes, std::size_t window)
      : n_nodes_(n_nodes), window_(window) {
    cpu_ring_.assign(window * n_nodes, 0.0);
    mem_ring_.assign(window * n_nodes, 0.0);
  }

  void record(const std::vector<double>& cpu, const std::vector<double>& mem) {
    const std::size_t slot = reports_ % window_;
    std::copy(cpu.begin(), cpu.end(), cpu_ring_.begin() + slot * n_nodes_);
    std::copy(mem.begin(), mem.end(), mem_ring_.begin() + slot * n_nodes_);
    ++reports_;
  }

  double reported_cpu(std::size_t n) const { return avg(cpu_ring_, n); }
  double reported_mem(std::size_t n) const { return avg(mem_ring_, n); }

  double last_mean_cpu() const { return last_mean(cpu_ring_); }
  double last_mean_mem() const { return last_mean(mem_ring_); }

 private:
  double avg(const std::vector<double>& ring, std::size_t n) const {
    if (reports_ == 0) return 0.0;
    const std::size_t filled = std::min(reports_, window_);
    double s = 0;
    for (std::size_t i = 0; i < filled; ++i) s += ring[i * n_nodes_ + n];
    return s / static_cast<double>(filled);
  }
  double last_mean(const std::vector<double>& ring) const {
    if (reports_ == 0) return 0.0;
    const double* row = ring.data() + ((reports_ - 1) % window_) * n_nodes_;
    double s = 0;
    for (std::size_t i = 0; i < n_nodes_; ++i) s += row[i];
    return s / static_cast<double>(n_nodes_);
  }

  std::size_t n_nodes_, window_;
  std::size_t reports_ = 0;
  std::vector<double> cpu_ring_, mem_ring_;
};

/// Drives monitor + reference through one tick: the reference gets the full
/// dense state, the monitor only the changed nodes.
struct Harness {
  Harness(std::size_t n_nodes, std::size_t window)
      : monitor(n_nodes, window),
        reference(n_nodes, window),
        cpu(n_nodes, 0.0),
        mem(n_nodes, 0.0) {}

  void tick(const std::vector<ResourceMonitor::NodeSample>& changed) {
    for (const auto& s : changed) {
      cpu[static_cast<std::size_t>(s.node)] = s.cpu;
      mem[static_cast<std::size_t>(s.node)] = s.mem;
    }
    monitor.record_sparse(changed);
    reference.record(cpu, mem);
  }

  void expect_identical(const char* where) {
    for (std::size_t n = 0; n < cpu.size(); ++n) {
      // EXPECT_EQ on doubles: bitwise-equal for all representable values the
      // engine produces (no NaNs in this stream), which is the contract.
      EXPECT_EQ(monitor.reported_cpu(static_cast<int>(n)),
                reference.reported_cpu(n))
          << where << ": cpu of node " << n;
      EXPECT_EQ(monitor.reported_mem(static_cast<int>(n)),
                reference.reported_mem(n))
          << where << ": mem of node " << n;
    }
    EXPECT_EQ(monitor.last_mean_cpu(), reference.last_mean_cpu()) << where;
    EXPECT_EQ(monitor.last_mean_mem(), reference.last_mean_mem()) << where;
  }

  ResourceMonitor monitor;
  DenseReference reference;
  std::vector<double> cpu, mem;
};

TEST(IncrementalMonitor, SparseTicksMatchDenseRecompute) {
  Harness h(4, 3);
  h.expect_identical("before any report");
  h.tick({{0, 0.5, 10.0}, {2, 0.25, 4.0}});
  h.expect_identical("after first sparse tick");
  h.tick({});  // quiet tick: everyone re-reports their previous value
  h.expect_identical("after quiet tick");
  h.tick({{0, 0.75, 12.0}});
  h.expect_identical("node 0 changed, 2 sticky");
  h.tick({{1, 1.0, 64.0}, {3, 0.1, 1.0}});
  h.expect_identical("window now wrapped");
  for (int i = 0; i < 7; ++i) h.tick({});
  h.expect_identical("long quiet spell");
  h.tick({{2, 0.0, 0.0}});
  h.expect_identical("node released everything");
}

TEST(IncrementalMonitor, QueriesDoNotPerturbLaterAnswers) {
  // Querying materializes lazy ring rows; interleaving queries at different
  // points must not change any later answer. Run the same tick sequence with
  // and without mid-stream queries and compare the final state exactly.
  const auto run = [](bool query_midstream) {
    ResourceMonitor m(3, 4);
    std::vector<double> out;
    m.record_sparse(std::vector<ResourceMonitor::NodeSample>{{0, 0.5, 8.0}});
    if (query_midstream) (void)m.reported_cpu(1);
    m.record_sparse(std::vector<ResourceMonitor::NodeSample>{{1, 0.25, 2.0}});
    if (query_midstream) {
      (void)m.reported_mem(0);
      (void)m.last_mean_cpu();
    }
    m.record_sparse(std::vector<ResourceMonitor::NodeSample>{});
    m.record_sparse(std::vector<ResourceMonitor::NodeSample>{{0, 0.1, 1.0}, {2, 0.9, 32.0}});
    for (int n = 0; n < 3; ++n) {
      out.push_back(m.reported_cpu(n));
      out.push_back(m.reported_mem(n));
    }
    out.push_back(m.last_mean_cpu());
    out.push_back(m.last_mean_mem());
    return out;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(IncrementalMonitor, DenseRecordStillWorks) {
  // The dense record() API (used by tests and any external caller) must agree
  // with sparse ingestion of the equivalent change sets.
  ResourceMonitor dense(2, 2), sparse(2, 2);
  const std::vector<double> mem{10.0, 0.0};
  dense.record(std::vector<double>{0.2, 0.4}, mem);
  dense.record(std::vector<double>{0.4, 0.4}, mem);
  sparse.record_sparse(
      std::vector<ResourceMonitor::NodeSample>{{0, 0.2, 10.0}, {1, 0.4, 0.0}});
  sparse.record_sparse(std::vector<ResourceMonitor::NodeSample>{{0, 0.4, 10.0}});
  for (int n = 0; n < 2; ++n) {
    EXPECT_EQ(dense.reported_cpu(n), sparse.reported_cpu(n));
    EXPECT_EQ(dense.reported_mem(n), sparse.reported_mem(n));
  }
  EXPECT_NEAR(dense.reported_cpu(0), 0.3, 1e-12);
  EXPECT_NEAR(dense.reported_cpu(1), 0.4, 1e-12);
}

TEST(IncrementalMonitor, FuzzDifferentialAgainstDenseReference) {
  std::mt19937_64 rng(20170815);
  for (int round = 0; round < 40; ++round) {
    const std::size_t n_nodes = 1 + rng() % 12;
    const std::size_t window = 1 + rng() % 7;
    Harness h(n_nodes, window);
    const int ticks = 3 + static_cast<int>(rng() % 40);
    for (int t = 0; t < ticks; ++t) {
      // Random dirty set (possibly empty, possibly everything).
      std::vector<ResourceMonitor::NodeSample> changed;
      for (std::size_t n = 0; n < n_nodes; ++n) {
        if (rng() % 3 != 0) continue;
        const double cpu =
            static_cast<double>(rng() % 1000) / 999.0;  // exact grid values
        const double mem = static_cast<double>(rng() % 64);
        changed.push_back({static_cast<int>(n), cpu, mem});
      }
      h.tick(changed);
      // Randomly interleave queries so lazy fills happen at varied depths.
      if (rng() % 2 == 0) {
        (void)h.monitor.reported_cpu(static_cast<int>(rng() % n_nodes));
        (void)h.monitor.reported_mem(static_cast<int>(rng() % n_nodes));
      }
      if (rng() % 4 == 0) h.expect_identical("fuzz mid-stream");
    }
    h.expect_identical("fuzz end-of-round");
  }
}

}  // namespace
