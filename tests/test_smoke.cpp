// End-to-end smoke test: train the selector, predict a footprint, and run a
// small mix through every scheduling policy.
#include <gtest/gtest.h>

#include "sched/experiment.h"
#include "sched/policies_basic.h"
#include "sched/policies_learned.h"
#include "sched/training_data.h"
#include "workloads/features.h"
#include "workloads/mixes.h"

namespace {

using namespace smoe;

TEST(Smoke, TrainSelectAndCalibrate) {
  const wl::FeatureModel features(1);
  sched::SelectorCache cache(features, 2);
  const auto& entry = cache.for_test_benchmark("SP.Gmm");
  ASSERT_EQ(entry.pool.size(), 3u);
  EXPECT_EQ(entry.selector.programs.size(), 16u);

  // The selector should route the vast majority of unseen applications to
  // the expert matching their true memory-function family (paper: 97.4%).
  std::size_t correct = 0, total = 0;
  for (const auto& bench : wl::all_spark_benchmarks()) {
    const auto& e = cache.for_test_benchmark(bench.name);
    const core::MoePredictor predictor(e.pool, e.selector);
    Rng rng(Rng::derive(3, bench.name));
    for (int run = 0; run < 3; ++run) {
      ++total;
      if (predictor.select(features.sample(bench, rng)).expert_index == bench.family_label())
        ++correct;
    }
  }
  EXPECT_GE(static_cast<double>(correct) / static_cast<double>(total), 0.9);
}

TEST(Smoke, AllPoliciesCompleteAMix) {
  const wl::FeatureModel features(1);
  sim::SimConfig cfg;
  cfg.seed = 99;
  sim::ClusterSim sim(cfg, features);

  Rng rng(7);
  const wl::TaskMix mix = wl::random_mix(5, rng);

  sched::IsolatedPolicy isolated;
  sched::PairwisePolicy pairwise;
  sched::OraclePolicy oracle;
  sched::OnlineSearchPolicy online;
  sched::MoePolicy moe(features, 2);
  sched::QuasarPolicy quasar(features, 2);

  for (sim::SchedulingPolicy* p :
       std::vector<sim::SchedulingPolicy*>{&isolated, &pairwise, &oracle, &online, &moe, &quasar}) {
    const sim::SimResult result = sim.run(mix, *p);
    ASSERT_EQ(result.apps.size(), mix.size()) << p->name();
    for (const auto& app : result.apps) {
      EXPECT_GE(app.finish, 0.0) << p->name() << " " << app.benchmark;
      EXPECT_GT(app.turnaround(), 0.0) << p->name() << " " << app.benchmark;
    }
  }
}

TEST(Smoke, OracleBeatsIsolatedOnThroughput) {
  const wl::FeatureModel features(1);
  sim::SimConfig cfg;
  cfg.seed = 5;
  sched::ExperimentRunner runner(cfg, features, /*n_mixes=*/2, /*mix_seed=*/11);

  sched::OraclePolicy oracle;
  sched::PairwisePolicy pairwise;
  const auto results = runner.run_scenario(wl::scenario_by_label("L5"), {&oracle, &pairwise});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_GT(results[0].stp_geomean, 1.0);           // co-location helps
  EXPECT_GT(results[0].stp_geomean, results[1].stp_geomean);  // Oracle > Pairwise
}

}  // namespace
