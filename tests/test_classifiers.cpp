// Parameterized tests over every classifier in the substrate (the Table 5
// lineup): each must separate well-separated Gaussian blobs, be deterministic
// given its seed, and respect the Classifier contract.
#include <gtest/gtest.h>

#include <functional>

#include "common/error.h"
#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/knn.h"
#include "ml/mlp.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"
#include "ml/svm.h"

namespace {

using namespace smoe;
using ml::Dataset;

Dataset gaussian_blobs(std::uint64_t seed, std::size_t per_class, double separation) {
  Rng rng(seed);
  const std::vector<std::pair<double, double>> centers = {{0, 0}, {separation, 0},
                                                          {0, separation}};
  Dataset ds;
  std::vector<ml::Vector> rows;
  for (int cls = 0; cls < 3; ++cls)
    for (std::size_t i = 0; i < per_class; ++i) {
      rows.push_back({centers[static_cast<std::size_t>(cls)].first + rng.normal(0, 0.3),
                      centers[static_cast<std::size_t>(cls)].second + rng.normal(0, 0.3),
                      rng.normal(0, 1.0)});  // a pure-noise feature
      ds.labels.push_back(cls);
    }
  ds.x = ml::Matrix::from_rows(rows);
  return ds;
}

struct Case {
  std::string name;
  ml::ClassifierFactory make;
};

std::vector<Case> all_classifiers() {
  return {
      {"knn1", [] { return std::make_unique<ml::KnnClassifier>(1); }},
      {"knn3", [] { return std::make_unique<ml::KnnClassifier>(3); }},
      {"naive_bayes", [] { return std::make_unique<ml::GaussianNaiveBayes>(); }},
      {"decision_tree", [] { return std::make_unique<ml::DecisionTree>(); }},
      {"random_forest",
       [] { return std::make_unique<ml::RandomForest>(ml::ForestParams{20, {}}, 3); }},
      {"svm", [] { return std::make_unique<ml::LinearSvm>(ml::SvmParams{1e-3, 60, 1.0}, 4); }},
      {"mlp",
       [] { return std::make_unique<ml::MlpClassifier>(ml::MlpParams{{8}, 120, 0.05, 1e-5}, 5); }},
      {"ann",
       [] {
         return std::make_unique<ml::MlpClassifier>(ml::MlpParams{{10, 6}, 120, 0.05, 1e-5}, 6,
                                                    "ANN");
       }},
  };
}

class EveryClassifier : public ::testing::TestWithParam<Case> {};

TEST_P(EveryClassifier, SeparatesGaussianBlobs) {
  const Dataset train = gaussian_blobs(1, 30, 4.0);
  const Dataset test = gaussian_blobs(2, 20, 4.0);
  auto clf = GetParam().make();
  clf->fit(train);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i)
    if (clf->predict(test.x.row(i)) == test.labels[i]) ++correct;
  EXPECT_GE(static_cast<double>(correct) / static_cast<double>(test.size()), 0.9)
      << GetParam().name;
}

TEST_P(EveryClassifier, DeterministicAcrossInstances) {
  const Dataset train = gaussian_blobs(3, 20, 4.0);
  const Dataset test = gaussian_blobs(4, 10, 4.0);
  auto a = GetParam().make();
  auto b = GetParam().make();
  a->fit(train);
  b->fit(train);
  for (std::size_t i = 0; i < test.size(); ++i)
    EXPECT_EQ(a->predict(test.x.row(i)), b->predict(test.x.row(i))) << GetParam().name;
}

TEST_P(EveryClassifier, PredictBeforeFitThrows) {
  auto clf = GetParam().make();
  const std::vector<double> x = {0, 0, 0};
  EXPECT_THROW(clf->predict(x), PreconditionError) << GetParam().name;
}

TEST_P(EveryClassifier, LoocvAccuracyHighOnSeparableData) {
  const Dataset ds = gaussian_blobs(5, 12, 5.0);
  EXPECT_GE(ml::loocv_accuracy(ds, GetParam().make), 0.85) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(Table5Lineup, EveryClassifier, ::testing::ValuesIn(all_classifiers()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return info.param.name;
                         });

// ---- classifier-specific behaviour ----

TEST(Knn, NeighboursSortedByDistance) {
  Dataset ds;
  ds.x = ml::Matrix::from_rows({{0.0}, {1.0}, {5.0}});
  ds.labels = {0, 1, 1};
  ml::KnnClassifier knn(3);
  knn.fit(ds);
  const auto nn = knn.neighbours(std::vector<double>{0.9});
  ASSERT_EQ(nn.size(), 3u);
  EXPECT_EQ(nn[0].index, 1u);
  EXPECT_LE(nn[0].distance, nn[1].distance);
  EXPECT_LE(nn[1].distance, nn[2].distance);
  EXPECT_NEAR(knn.nearest_distance(std::vector<double>{0.9}), 0.1, 1e-12);
}

TEST(Knn, MajorityVoteWithK3) {
  Dataset ds;
  ds.x = ml::Matrix::from_rows({{0.0}, {0.2}, {0.4}, {10.0}});
  ds.labels = {1, 1, 0, 0};
  ml::KnnClassifier knn(3);
  knn.fit(ds);
  EXPECT_EQ(knn.predict(std::vector<double>{0.1}), 1);
}

TEST(Knn, KZeroRejected) { EXPECT_THROW(ml::KnnClassifier(0), PreconditionError); }

TEST(DecisionTree, PerfectlySeparableDataGetsPureLeaves) {
  Dataset ds;
  ds.x = ml::Matrix::from_rows({{0.0}, {1.0}, {2.0}, {10.0}, {11.0}, {12.0}});
  ds.labels = {0, 0, 0, 1, 1, 1};
  ml::DecisionTree tree;
  tree.fit(ds);
  for (std::size_t i = 0; i < ds.size(); ++i)
    EXPECT_EQ(tree.predict(ds.x.row(i)), ds.labels[i]);
  EXPECT_LE(tree.depth(), 2u);
}

TEST(DecisionTree, RespectsMaxDepth) {
  const Dataset ds = gaussian_blobs(7, 40, 1.0);  // overlapping blobs
  ml::DecisionTree stump(ml::TreeParams{1, 2, 0});
  stump.fit(ds);
  EXPECT_LE(stump.depth(), 2u);  // root + leaves
}

TEST(Svm, DecisionValueSignMatchesClass) {
  Dataset ds;
  ds.x = ml::Matrix::from_rows({{-2.0}, {-1.5}, {1.5}, {2.0}});
  ds.labels = {0, 0, 1, 1};
  ml::LinearSvm svm;
  svm.fit(ds);
  EXPECT_GT(svm.decision_value(1, std::vector<double>{2.0}),
            svm.decision_value(1, std::vector<double>{-2.0}));
  EXPECT_EQ(svm.predict(std::vector<double>{-1.8}), 0);
  EXPECT_EQ(svm.predict(std::vector<double>{1.8}), 1);
}

TEST(NaiveBayes, UsesPriorsWhenFeaturesUninformative) {
  Dataset ds;
  // Identical feature values, 4:1 class imbalance.
  ds.x = ml::Matrix::from_rows({{1.0}, {1.0}, {1.0}, {1.0}, {1.0}});
  ds.labels = {0, 0, 0, 0, 1};
  ml::GaussianNaiveBayes nb;
  nb.fit(ds);
  EXPECT_EQ(nb.predict(std::vector<double>{1.0}), 0);
}

TEST(Dataset, SubsetAndWithout) {
  Dataset ds;
  ds.x = ml::Matrix::from_rows({{1.0}, {2.0}, {3.0}});
  ds.labels = {0, 1, 2};
  const std::vector<std::size_t> keep = {2, 0};
  const Dataset sub = ds.subset(keep);
  EXPECT_EQ(sub.labels, (std::vector<int>{2, 0}));
  EXPECT_DOUBLE_EQ(sub.x(0, 0), 3.0);
  const Dataset rest = ds.without(1);
  EXPECT_EQ(rest.labels, (std::vector<int>{0, 2}));
}

TEST(Dataset, ValidationErrors) {
  Dataset ds;
  ds.x = ml::Matrix::from_rows({{1.0}});
  ds.labels = {0, 1};
  EXPECT_THROW(ds.validate(), PreconditionError);
  ds.labels = {-1};
  EXPECT_THROW(ds.validate(), PreconditionError);
}

}  // namespace
