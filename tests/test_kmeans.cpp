// Tests for the k-means substrate.
#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "ml/kmeans.h"

namespace {

using namespace smoe;
using ml::Matrix;

Matrix three_blobs(std::uint64_t seed, std::size_t per_blob = 30) {
  Rng rng(seed);
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  Matrix x(3 * per_blob, 2);
  for (std::size_t b = 0; b < 3; ++b)
    for (std::size_t i = 0; i < per_blob; ++i) {
      x(b * per_blob + i, 0) = centers[b][0] + rng.normal(0, 0.5);
      x(b * per_blob + i, 1) = centers[b][1] + rng.normal(0, 0.5);
    }
  return x;
}

TEST(KMeans, RecoversWellSeparatedBlobs) {
  const Matrix x = three_blobs(1);
  const ml::KMeansResult r = ml::kmeans(x, 3, 7);
  // Each ground-truth blob maps to exactly one discovered cluster.
  for (std::size_t b = 0; b < 3; ++b) {
    std::set<std::size_t> labels;
    for (std::size_t i = 0; i < 30; ++i) labels.insert(r.assignment[b * 30 + i]);
    EXPECT_EQ(labels.size(), 1u) << "blob " << b;
  }
  // The three clusters are distinct.
  const std::set<std::size_t> all(r.assignment.begin(), r.assignment.end());
  EXPECT_EQ(all.size(), 3u);
}

TEST(KMeans, InertiaDecreasesWithK) {
  const Matrix x = three_blobs(2);
  const double i1 = ml::kmeans(x, 1, 7).inertia;
  const double i2 = ml::kmeans(x, 2, 7).inertia;
  const double i3 = ml::kmeans(x, 3, 7).inertia;
  EXPECT_GT(i1, i2);
  EXPECT_GT(i2, i3);
  // k = 3 on 3 tight blobs leaves only within-blob noise.
  EXPECT_LT(i3, 0.05 * i1);
}

TEST(KMeans, DeterministicGivenSeed) {
  const Matrix x = three_blobs(3);
  const auto a = ml::kmeans(x, 3, 11);
  const auto b = ml::kmeans(x, 3, 11);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeans, KEqualsRowsGivesZeroInertia) {
  const Matrix x = Matrix::from_rows({{0.0, 0.0}, {5.0, 5.0}, {9.0, 1.0}});
  const auto r = ml::kmeans(x, 3, 1);
  EXPECT_NEAR(r.inertia, 0.0, 1e-18);
}

TEST(KMeans, SingleClusterCentroidIsMean) {
  const Matrix x = Matrix::from_rows({{0.0, 2.0}, {4.0, 6.0}});
  const auto r = ml::kmeans(x, 1, 1);
  EXPECT_NEAR(r.centroids(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(r.centroids(0, 1), 4.0, 1e-12);
}

TEST(KMeans, Validation) {
  const Matrix x = Matrix::from_rows({{1.0}, {2.0}});
  EXPECT_THROW(ml::kmeans(x, 0, 1), PreconditionError);
  EXPECT_THROW(ml::kmeans(x, 3, 1), PreconditionError);
}

TEST(KMeans, DuplicatePointsHandled) {
  const Matrix x = Matrix::from_rows({{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}, {9.0, 9.0}});
  const auto r = ml::kmeans(x, 2, 5);
  EXPECT_EQ(r.assignment[0], r.assignment[1]);
  EXPECT_EQ(r.assignment[1], r.assignment[2]);
  EXPECT_NE(r.assignment[0], r.assignment[3]);
}

}  // namespace
