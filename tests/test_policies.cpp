// Tests for the scheduling policies' estimates and profiling costs.
#include <gtest/gtest.h>

#include <cmath>

#include "sched/policies_basic.h"
#include "sched/policies_learned.h"
#include "workloads/features.h"

namespace {

using namespace smoe;

sim::AppProbe make_probe(const wl::FeatureModel& features, const std::string& name,
                         Items input, std::uint64_t seed) {
  return sim::AppProbe(wl::find_benchmark(name), features, input, seed);
}

TEST(OraclePolicy, ExactFootprintZeroCost) {
  const wl::FeatureModel features(1);
  sched::OraclePolicy oracle;
  auto probe = make_probe(features, "HB.PageRank", 286720, 1);
  sim::MemoryEstimate est;
  const sim::ProfilingCost cost = oracle.profile(probe, est);
  EXPECT_EQ(cost.feature_items, 0.0);
  EXPECT_EQ(cost.calibration_items, 0.0);
  const auto& bench = wl::find_benchmark("HB.PageRank");
  EXPECT_DOUBLE_EQ(est.footprint(50000), bench.footprint(50000));
  EXPECT_DOUBLE_EQ(est.cpu_load, bench.cpu_load_iso);
}

TEST(MoePolicy, AccurateEstimateWithPaperLikeOverhead) {
  const wl::FeatureModel features(1);
  sched::MoePolicy moe(features, 2);
  auto probe = make_probe(features, "SB.ShortestPath", 286720, 2);
  sim::MemoryEstimate est;
  const sim::ProfilingCost cost = moe.profile(probe, est);
  EXPECT_EQ(cost.feature_items, sched::kFeatureRunItems);
  EXPECT_GT(cost.calibration_items, 0.0);
  EXPECT_LE(cost.calibration_items, 0.15 * probe.input_items());
  const auto& bench = wl::find_benchmark("SB.ShortestPath");
  const double truth = bench.footprint(40000);
  EXPECT_NEAR(est.footprint(40000), truth, 0.12 * truth);
  EXPECT_NEAR(est.cpu_load, bench.cpu_load_iso, 0.05);
  EXPECT_FALSE(moe.selection_counts().empty());
}

TEST(MoePolicy, MeanErrorAcrossAllBenchmarksMatchesPaper) {
  // Section 6.9: "average prediction error of 5%". Allow some slack.
  const wl::FeatureModel features(1);
  sched::MoePolicy moe(features, 2);
  double total_err = 0;
  int n = 0;
  for (const auto& bench : wl::all_spark_benchmarks()) {
    auto probe = sim::AppProbe(bench, features, 1048576, Rng::derive(7, bench.name));
    sim::MemoryEstimate est;
    moe.profile(probe, est);
    const double truth = bench.footprint(43690);
    total_err += std::abs(est.footprint(43690) - truth) / truth;
    ++n;
  }
  EXPECT_LT(total_err / n, 0.10);
}

TEST(QuasarPolicy, EstimatesSnapToResourceClasses) {
  const wl::FeatureModel features(1);
  sched::QuasarPolicy quasar(features, 2);
  auto probe = make_probe(features, "SP.Gmm", 286720, 3);
  sim::MemoryEstimate est;
  quasar.profile(probe, est);
  for (const double x : {2000.0, 20000.0, 200000.0}) {
    const double v = est.footprint(x);
    EXPECT_GE(v, 8.0);
    EXPECT_NEAR(std::fmod(v, 8.0), 0.0, 1e-9) << x;
  }
}

TEST(QuasarPolicy, LessAccurateThanMoeOnAverage) {
  const wl::FeatureModel features(1);
  sched::MoePolicy moe(features, 2);
  sched::QuasarPolicy quasar(features, 2);
  double err_moe = 0, err_quasar = 0;
  for (const auto& bench : wl::all_spark_benchmarks()) {
    sim::AppProbe p1(bench, features, 1048576, Rng::derive(9, bench.name));
    sim::AppProbe p2(bench, features, 1048576, Rng::derive(9, bench.name));
    sim::MemoryEstimate e1, e2;
    moe.profile(p1, e1);
    quasar.profile(p2, e2);
    const double truth = bench.footprint(43690);
    err_moe += std::abs(e1.footprint(43690) - truth) / truth;
    err_quasar += std::abs(e2.footprint(43690) - truth) / truth;
  }
  EXPECT_LT(err_moe, 0.5 * err_quasar);
}

TEST(UnifiedCurvePolicy, UnifiedExponentialUnderPredictsGrowingApps) {
  // A single exponential fit to the pooled training data saturates, so it
  // must under-predict a power-law app at scale — the Figure 9 failure mode.
  const wl::FeatureModel features(1);
  sched::UnifiedCurvePolicy exp_only(ml::CurveKind::kExponential, features, 2);
  auto probe = make_probe(features, "SB.MatrixFact", 1048576, 4);
  sim::MemoryEstimate est;
  exp_only.profile(probe, est);
  const double truth = wl::find_benchmark("SB.MatrixFact").footprint(500000);
  EXPECT_LT(est.footprint(500000), 0.85 * truth);
}

TEST(UnifiedCurvePolicy, LessAccurateThanMoeOnAverage) {
  const wl::FeatureModel features(1);
  sched::MoePolicy moe(features, 2);
  sched::UnifiedCurvePolicy unified(ml::CurveKind::kPowerLaw, features, 2);
  double err_moe = 0, err_unified = 0;
  for (const auto& bench : wl::all_spark_benchmarks()) {
    sim::AppProbe p1(bench, features, 1048576, Rng::derive(19, bench.name));
    sim::AppProbe p2(bench, features, 1048576, Rng::derive(19, bench.name));
    sim::MemoryEstimate e1, e2;
    moe.profile(p1, e1);
    unified.profile(p2, e2);
    const double truth = bench.footprint(43690);
    err_moe += std::abs(e1.footprint(43690) - truth) / truth;
    err_unified += std::abs(e2.footprint(43690) - truth) / truth;
  }
  EXPECT_LT(err_moe, 0.6 * err_unified);
}

TEST(UnifiedCurvePolicy, Names) {
  const wl::FeatureModel features(1);
  EXPECT_EQ(sched::UnifiedCurvePolicy(ml::CurveKind::kPowerLaw, features, 2).name(),
            "Linear Regression");
  EXPECT_EQ(sched::UnifiedCurvePolicy(ml::CurveKind::kExponential, features, 2).name(),
            "Exponential Regression");
}

TEST(UnifiedAnnPolicy, ProducesBoundedMonotoneEstimates) {
  const wl::FeatureModel features(1);
  sched::UnifiedAnnPolicy ann(features, 2);
  auto probe = make_probe(features, "HB.PageRank", 286720, 6);
  sim::MemoryEstimate est;
  ann.profile(probe, est);
  const double small = est.footprint(2000);
  const double large = est.footprint(200000);
  EXPECT_GT(small, 0.0);
  EXPECT_LT(large, 200.0);
  const double truth = wl::find_benchmark("HB.PageRank").footprint(40000);
  EXPECT_NEAR(est.footprint(40000), truth, 0.5 * truth);
}

TEST(OnlineSearchPolicy, InverseSearchFindsBudgetBoundary) {
  const wl::FeatureModel features(1);
  sched::OnlineSearchPolicy online;
  auto probe = make_probe(features, "SP.Gmm", 286720, 7);
  sim::MemoryEstimate est;
  const sim::ProfilingCost cost = online.profile(probe, est);
  EXPECT_EQ(cost.feature_items + cost.calibration_items, 0.0);  // cost is per spawn
  EXPECT_GT(online.spawn_search_overhead(), 0.0);
  const auto& bench = wl::find_benchmark("SP.Gmm");
  const double budget = 30.0;
  const Items found = est.items_for_budget(budget);
  const Items truth = bench.items_for_budget(budget);
  EXPECT_NEAR(found, truth, 0.2 * truth);
}

TEST(PolicyTraits, ModesAndChecks) {
  sched::IsolatedPolicy isolated;
  sched::PairwisePolicy pairwise;
  sched::OraclePolicy oracle;
  EXPECT_EQ(isolated.mode(), sim::DispatchMode::kIsolated);
  EXPECT_EQ(pairwise.mode(), sim::DispatchMode::kPairwise);
  EXPECT_EQ(oracle.mode(), sim::DispatchMode::kPredictive);
  EXPECT_FALSE(isolated.cpu_check());
  EXPECT_FALSE(pairwise.cpu_check());
  EXPECT_TRUE(oracle.cpu_check());
  EXPECT_DOUBLE_EQ(oracle.spawn_search_overhead(), 0.0);
}

}  // namespace
