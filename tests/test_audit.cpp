// Tests for audit::InvariantAuditor: clean runs under every policy pass, the
// auditor is a passive observer (attaching it changes SimResult by nothing),
// and corrupted event streams — including a replay of the historical
// release() clamp bug — are rejected with a copy-pasteable repro.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "obs/analysis/trace_reader.h"
#include "obs/flight_recorder.h"
#include "obs/sink.h"
#include "sched/policies_basic.h"
#include "sched/policies_learned.h"
#include "sparksim/audit/invariant_auditor.h"
#include "sparksim/engine.h"
#include "workloads/features.h"
#include "workloads/mixes.h"

namespace {

using namespace smoe;

const wl::FeatureModel& features() {
  static const wl::FeatureModel f(2017);
  return f;
}

/// Busy mix: co-location, monitor reports, degradations, and (with MoE
/// predictions) OOM kills + isolated re-runs — exercises every event type.
const wl::TaskMix& busy_mix() {
  static const wl::TaskMix mix = {{"HB.TeraSort", 262144.0}, {"SP.Gmm", 131072.0},
                                  {"SP.ALS", 65536.0},       {"HB.Scan", 131072.0},
                                  {"SP.LDA", 65536.0},       {"BDB.PageRank", 131072.0}};
  return mix;
}

/// Captures the full event stream so tests can tamper with it and replay it
/// into an auditor (the corrupted-stream harness). Deep-copies each event
/// (obs::OwnedEvent): an Event's string fields are views that are only valid
/// during emit(), so retention requires owning copies.
struct RecordingSink final : obs::EventSink {
  std::vector<obs::OwnedEvent> events;
  void emit(const obs::Event& event) override { events.emplace_back(event); }
};

struct RecordedRun {
  std::uint64_t seed = 0;
  std::vector<obs::OwnedEvent> events;
};

/// A recorded MoE trace that contains at least one OOM (scans seeds until one
/// does, then caches it): the tamper tests need the full release/rerun
/// vocabulary present in the stream.
/// Predicts a twentieth of the measured footprint: every predictive executor
/// overshoots its heap far past the OOM tolerance, so the recorded stream is
/// guaranteed to contain the full OOM / isolated-rerun / distrusted-fallback
/// vocabulary the tamper tests mutate.
class UnderPredictingPolicy final : public sim::SchedulingPolicy {
 public:
  std::string name() const override { return "under-predict"; }
  sim::DispatchMode mode() const override { return sim::DispatchMode::kPredictive; }
  sim::ProfilingCost profile(sim::AppProbe& probe, sim::MemoryEstimate& est) override {
    const double per_item = probe.measure_footprint(8192.0) / 8192.0;
    est.footprint = [per_item](Items items) { return 0.05 * per_item * items; };
    est.items_for_budget = [](GiB) { return 8192.0; };
    est.cpu_load = 0.3;
    return {};
  }
};

const RecordedRun& recorded_oomy_run() {
  static const RecordedRun run = [] {
    RecordingSink rec;
    sim::SimConfig cfg;
    cfg.seed = 77;
    // A small cluster forces co-location, so releases leave other executors'
    // memory reserved on the node — the state the clamp-bug tamper needs.
    cfg.cluster.n_nodes = 8;
    cfg.sink = &rec;
    sim::ClusterSim sim(cfg, features());
    UnderPredictingPolicy policy;
    if (sim.run(busy_mix(), policy).oom_total < 1)
      throw std::runtime_error("under-predicting run produced no OOM");
    return RecordedRun{cfg.seed, std::move(rec.events)};
  }();
  return run;
}

std::vector<obs::OwnedEvent> record_moe_run() { return recorded_oomy_run().events; }

void replay(const std::vector<obs::OwnedEvent>& events, sim::audit::InvariantAuditor& auditor) {
  for (const obs::OwnedEvent& e : events) auditor.emit(e.view());
}

obs::OwnedEvent::Field& field(obs::OwnedEvent& event, std::string_view key) {
  for (obs::OwnedEvent::Field& f : event.fields)
    if (f.key == key) return f;
  throw std::runtime_error("tamper: no field " + std::string(key));
}

/// Index of the n-th (0-based) event of `type`, or npos.
std::size_t nth_of(const std::vector<obs::OwnedEvent>& events, obs::EventType type,
                   std::size_t n = 0) {
  for (std::size_t i = 0; i < events.size(); ++i)
    if (events[i].type == type && n-- == 0) return i;
  return std::string::npos;
}

// ---- clean runs pass ----

TEST(Audit, CleanRunsPassUnderEveryPolicy) {
  struct Case {
    std::string name;
    std::unique_ptr<sim::SchedulingPolicy> policy;
  };
  std::vector<Case> cases;
  cases.push_back({"isolated", std::make_unique<sched::IsolatedPolicy>()});
  cases.push_back({"pairwise", std::make_unique<sched::PairwisePolicy>()});
  cases.push_back({"oracle", std::make_unique<sched::OraclePolicy>()});
  cases.push_back({"online", std::make_unique<sched::OnlineSearchPolicy>()});
  cases.push_back({"moe", std::make_unique<sched::MoePolicy>(features(), 2017)});
  cases.push_back({"quasar", std::make_unique<sched::QuasarPolicy>(features(), 2017)});

  sim::audit::InvariantAuditor auditor;
  for (Case& c : cases) {
    sim::SimConfig cfg;
    cfg.seed = 404;
    cfg.sink = &auditor;
    sim::ClusterSim sim(cfg, features());
    EXPECT_NO_THROW(sim.run(busy_mix(), *c.policy)) << c.name;
  }
  EXPECT_EQ(auditor.runs_completed(), cases.size());
  EXPECT_FALSE(auditor.run_in_progress());
  EXPECT_GT(auditor.events_seen(), 0u);
}

TEST(Audit, CleanRandomMixesPass) {
  sim::audit::InvariantAuditor auditor;
  sched::MoePolicy moe(features(), 7);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sim::SimConfig cfg;
    cfg.seed = seed;
    cfg.sink = &auditor;
    sim::ClusterSim sim(cfg, features());
    Rng rng(seed);
    EXPECT_NO_THROW(sim.run(wl::random_mix(6, rng), moe)) << "seed " << seed;
  }
  EXPECT_EQ(auditor.runs_completed(), 8u);
}

// ---- passivity: attaching the auditor changes nothing ----

TEST(Audit, AuditorIsPassiveObserver) {
  auto run_with = [&](obs::EventSink* sink) {
    sim::SimConfig cfg;
    cfg.seed = 77;
    cfg.sink = sink;
    sim::ClusterSim sim(cfg, features());
    sched::MoePolicy moe(features(), cfg.seed);
    return sim.run(busy_mix(), moe);
  };
  const sim::SimResult bare = run_with(nullptr);
  sim::audit::InvariantAuditor auditor;
  const sim::SimResult audited = run_with(&auditor);

  EXPECT_EQ(bare.makespan, audited.makespan);
  EXPECT_EQ(bare.oom_total, audited.oom_total);
  EXPECT_EQ(bare.executors_spawned, audited.executors_spawned);
  EXPECT_EQ(bare.executors_degraded, audited.executors_degraded);
  EXPECT_EQ(bare.peak_node_occupancy, audited.peak_node_occupancy);
  EXPECT_EQ(bare.reserved_gib_hours, audited.reserved_gib_hours);
  EXPECT_EQ(bare.used_gib_hours, audited.used_gib_hours);
  ASSERT_EQ(bare.apps.size(), audited.apps.size());
  for (std::size_t i = 0; i < bare.apps.size(); ++i) {
    EXPECT_EQ(bare.apps[i].finish, audited.apps[i].finish);
    EXPECT_EQ(bare.apps[i].oom_events, audited.apps[i].oom_events);
  }
  EXPECT_EQ(bare.metrics, audited.metrics);
}

TEST(Audit, TeesWithUserSinks) {
  // Auditing must compose with normal tracing: same counts either way.
  sim::audit::InvariantAuditor auditor;
  obs::CountingSink counter;
  obs::TeeSink tee(auditor, counter);
  sim::SimConfig cfg;
  cfg.seed = 77;
  cfg.sink = &tee;
  sim::ClusterSim sim(cfg, features());
  sched::MoePolicy moe(features(), cfg.seed);
  const sim::SimResult r = sim.run(busy_mix(), moe);
  EXPECT_EQ(auditor.runs_completed(), 1u);
  EXPECT_EQ(counter.count(obs::EventType::kExecutorSpawn), r.executors_spawned);
  EXPECT_EQ(counter.total(), auditor.events_seen());
}

// ---- corrupted streams are rejected ----

TEST(Audit, DetectsReleaseClampAccountingBug) {
  // Replays the class of bug the release() fix removed: the engine zeroing a
  // node's positive reserved-memory counter that the live executors still
  // account for. The tampered stream says "reserved is 0 now" while the
  // shadow model knows an executor still holds memory there.
  std::vector<obs::OwnedEvent> events = record_moe_run();
  bool tampered = false;
  for (obs::OwnedEvent& e : events) {
    if (e.type != obs::EventType::kExecutorFinish && e.type != obs::EventType::kExecutorOom)
      continue;
    obs::OwnedEvent::Field& f = field(e, "node_reserved_after");
    if (std::get<double>(f.value) > 1e-3) {
      f.value = 0.0;  // the old clamp: positive load erased to zero
      tampered = true;
      break;
    }
  }
  ASSERT_TRUE(tampered) << "no finish event left memory reserved; change the mix";

  sim::audit::InvariantAuditor auditor;
  try {
    replay(events, auditor);
    FAIL() << "auditor accepted a zeroed reserved-memory counter";
  } catch (const InvariantError& err) {
    const std::string msg = err.what();
    EXPECT_NE(msg.find("reserved drift"), std::string::npos) << msg;
    EXPECT_NE(msg.find("repro:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("seed=" + std::to_string(recorded_oomy_run().seed)), std::string::npos) << msg;
  }
}

TEST(Audit, DetectsDoubleRelease) {
  std::vector<obs::OwnedEvent> events = record_moe_run();
  const std::size_t i = nth_of(events, obs::EventType::kExecutorFinish);
  ASSERT_NE(i, std::string::npos);
  events.insert(events.begin() + static_cast<std::ptrdiff_t>(i) + 1, events[i]);
  sim::audit::InvariantAuditor auditor;
  EXPECT_THROW(replay(events, auditor), InvariantError);
}

TEST(Audit, FailureDumpsFlightRecorderPostmortem) {
  // The same double-release corruption, but with a flight recorder wired in:
  // the thrown error must point at a JSONL dump whose tail is the violating
  // event, and the dump must parse like any other trace.
  std::vector<obs::OwnedEvent> events = record_moe_run();
  const std::size_t i = nth_of(events, obs::EventType::kExecutorFinish);
  ASSERT_NE(i, std::string::npos);
  events.insert(events.begin() + static_cast<std::ptrdiff_t>(i) + 1, events[i]);

  const std::filesystem::path dump =
      std::filesystem::path(::testing::TempDir()) / "audit_flight_dump.jsonl";
  std::filesystem::remove(dump);
  obs::FlightRecorder flight(64);
  sim::audit::InvariantAuditor::Options opts;
  opts.flight = &flight;
  opts.flight_dump_path = dump.string();
  sim::audit::InvariantAuditor auditor(opts);
  try {
    replay(events, auditor);
    FAIL() << "auditor accepted a double release";
  } catch (const InvariantError& err) {
    const std::string msg = err.what();
    EXPECT_NE(msg.find("flight recorder: last"), std::string::npos) << msg;
    EXPECT_NE(msg.find(dump.string()), std::string::npos) << msg;
  }
  ASSERT_TRUE(std::filesystem::exists(dump));
  const std::vector<obs::OwnedEvent> dumped = obs::TraceReader::read_file(dump);
  ASSERT_FALSE(dumped.empty());
  EXPECT_EQ(dumped.size(), flight.size());
  EXPECT_LE(dumped.size(), flight.capacity());
  EXPECT_EQ(dumped.back().type, obs::EventType::kExecutorFinish)
      << "dump must end with the violating event";
  std::filesystem::remove(dump);
}

TEST(Audit, DetectsDroppedRelease) {
  // Losing a finish leaves a phantom executor in the shadow model; the stream
  // becomes inconsistent at the latest by that app's finish event.
  std::vector<obs::OwnedEvent> events = record_moe_run();
  const std::size_t i = nth_of(events, obs::EventType::kExecutorFinish);
  ASSERT_NE(i, std::string::npos);
  events.erase(events.begin() + static_cast<std::ptrdiff_t>(i));
  sim::audit::InvariantAuditor auditor;
  EXPECT_THROW(replay(events, auditor), InvariantError);
}

TEST(Audit, DetectsOverCommittedReservation) {
  // Inflate one executor's reservation past node RAM in both the dispatch
  // decision and the spawn (a consistent lie, as a buggy dispatcher would
  // tell it).
  std::vector<obs::OwnedEvent> events = record_moe_run();
  const std::size_t d = nth_of(events, obs::EventType::kDispatch);
  const std::size_t s = nth_of(events, obs::EventType::kExecutorSpawn);
  ASSERT_NE(d, std::string::npos);
  ASSERT_NE(s, std::string::npos);
  field(events[d], "reserved_gib").value = 1e6;
  field(events[s], "reserved_gib").value = 1e6;
  sim::audit::InvariantAuditor auditor;
  EXPECT_THROW(replay(events, auditor), InvariantError);
}

TEST(Audit, DetectsItemsConservationViolation) {
  // Shrink the declared input: the engine then appears to dispatch more
  // items than the application ever had.
  std::vector<obs::OwnedEvent> events = record_moe_run();
  const std::size_t i = nth_of(events, obs::EventType::kAppSubmit);
  ASSERT_NE(i, std::string::npos);
  obs::OwnedEvent::Field& f = field(events[i], "input_items");
  f.value = std::get<double>(f.value) * 0.5;
  sim::audit::InvariantAuditor auditor;
  EXPECT_THROW(replay(events, auditor), InvariantError);
}

TEST(Audit, DetectsTimeGoingBackwards) {
  std::vector<obs::OwnedEvent> events = record_moe_run();
  const std::size_t i = nth_of(events, obs::EventType::kMonitorReport);
  ASSERT_NE(i, std::string::npos);
  events[static_cast<std::size_t>(i)].t = -1.0;
  sim::audit::InvariantAuditor auditor;
  EXPECT_THROW(replay(events, auditor), InvariantError);
}

// ---- failure diagnostics ----

TEST(Audit, FailureEmbedsCallerContextAndRunParameters) {
  std::vector<obs::OwnedEvent> events = record_moe_run();
  const std::size_t i = nth_of(events, obs::EventType::kExecutorFinish);
  ASSERT_NE(i, std::string::npos);
  events.insert(events.begin() + static_cast<std::ptrdiff_t>(i) + 1, events[i]);

  sim::audit::InvariantAuditor::Options opts;
  opts.context = "fuzz_sim --seed 99 --one 12345";
  sim::audit::InvariantAuditor auditor(opts);
  try {
    replay(events, auditor);
    FAIL() << "corrupted stream accepted";
  } catch (const InvariantError& err) {
    const std::string msg = err.what();
    EXPECT_NE(msg.find("repro: fuzz_sim --seed 99 --one 12345"), std::string::npos) << msg;
    EXPECT_NE(msg.find("seed=" + std::to_string(recorded_oomy_run().seed)), std::string::npos) << msg;
    EXPECT_NE(msg.find("policy=under-predict"), std::string::npos) << msg;
    EXPECT_NE(msg.find("n_apps=6"), std::string::npos) << msg;
    EXPECT_NE(msg.find("n_nodes="), std::string::npos) << msg;
  }
}

TEST(Audit, ResetAfterFailureAllowsReuse) {
  std::vector<obs::OwnedEvent> events = record_moe_run();
  std::vector<obs::OwnedEvent> bad = events;
  const std::size_t i = nth_of(bad, obs::EventType::kExecutorFinish);
  ASSERT_NE(i, std::string::npos);
  bad.insert(bad.begin() + static_cast<std::ptrdiff_t>(i) + 1, bad[i]);

  sim::audit::InvariantAuditor auditor;
  EXPECT_THROW(replay(bad, auditor), InvariantError);
  auditor.reset();
  EXPECT_NO_THROW(replay(events, auditor));
  EXPECT_EQ(auditor.runs_completed(), 1u);
}

}  // namespace
