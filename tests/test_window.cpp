// Windowed telemetry tests: P² quantile exactness (n <= 5), accuracy bounds
// on synthetic distributions and on golden-trace replays, determinism,
// WindowedRate sliding-window semantics, and Registry integration (mismatch
// detection, snapshot equality).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "common/error.h"
#include "obs/analysis/timeline.h"
#include "obs/analysis/trace_reader.h"
#include "obs/registry.h"
#include "obs/window.h"

#ifndef SMOE_GOLDEN_DIR
#error "SMOE_GOLDEN_DIR must point at tests/golden"
#endif

namespace {

using namespace smoe;
using namespace smoe::obs;

/// Exact linear-interpolated sample quantile — the reference P² approximates.
double exact_quantile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const double h = p * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  if (lo + 1 >= v.size()) return v.back();
  return v[lo] + (h - static_cast<double>(lo)) * (v[lo + 1] - v[lo]);
}

// ---- P² ----

TEST(P2Quantile, ExactForUpToFiveObservations) {
  const std::vector<double> stream = {7.0, -2.0, 11.0, 3.0, 5.0};
  for (double p : {0.1, 0.25, 0.5, 0.9, 0.99}) {
    P2Quantile q(p);
    std::vector<double> seen;
    EXPECT_EQ(q.value(), 0) << "before any observation";
    for (double x : stream) {
      q.observe(x);
      seen.push_back(x);
      EXPECT_DOUBLE_EQ(q.value(), exact_quantile(seen, p))
          << "p=" << p << " after " << seen.size() << " observations";
    }
    EXPECT_EQ(q.count(), stream.size());
  }
}

TEST(P2Quantile, UniformAndExponentialAccuracy) {
  // Documented accuracy contract (DESIGN.md §12): on well-behaved
  // distributions at N = 10000, P² lands within 2% of the true quantile
  // value range for the median and within 5% relative error at the tails.
  std::mt19937_64 rng(424242);
  {
    std::uniform_real_distribution<double> u(0.0, 1.0);
    P2Quantile p50(0.5), p99(0.99);
    for (int i = 0; i < 10000; ++i) {
      const double x = u(rng);
      p50.observe(x);
      p99.observe(x);
    }
    EXPECT_NEAR(p50.value(), 0.5, 0.02);
    EXPECT_NEAR(p99.value(), 0.99, 0.02);
  }
  {
    std::exponential_distribution<double> ex(1.0);
    P2Quantile p50(0.5), p99(0.99);
    std::vector<double> all;
    for (int i = 0; i < 10000; ++i) {
      const double x = ex(rng);
      p50.observe(x);
      p99.observe(x);
      all.push_back(x);
    }
    const double true_p50 = std::log(2.0);          // ~0.693
    const double true_p99 = -std::log(0.01);        // ~4.605
    EXPECT_NEAR(p50.value(), true_p50, 0.05 * true_p50);
    EXPECT_NEAR(p99.value(), true_p99, 0.05 * true_p99);
    // And against the sample quantile of this concrete stream.
    EXPECT_NEAR(p99.value(), exact_quantile(all, 0.99),
                0.05 * exact_quantile(all, 0.99));
  }
}

TEST(P2Quantile, DeterministicAcrossRuns) {
  std::mt19937_64 rng(7);
  std::normal_distribution<double> n(100.0, 15.0);
  std::vector<double> stream;
  for (int i = 0; i < 5000; ++i) stream.push_back(n(rng));
  P2Quantile a(0.9), b(0.9);
  for (double x : stream) a.observe(x);
  for (double x : stream) b.observe(x);
  EXPECT_EQ(a.value(), b.value()) << "bitwise-identical, not just close";
}

/// Fraction of samples <= x: where an estimate lands in the empirical CDF.
double empirical_rank(const std::vector<double>& v, double x) {
  std::size_t n = 0;
  for (double s : v)
    if (s <= x) ++n;
  return static_cast<double>(n) / static_cast<double>(v.size());
}

TEST(P2Quantile, GoldenTraceReplayWithinBounds) {
  // Replay real engine streams (executor lifetimes from the golden corpus:
  // short, heavy-tailed — the hard case for five markers). The documented
  // accuracy contract (DESIGN.md §12) is rank-based, which is the honest
  // guarantee at small n: the p50 estimate must land within ±0.15 of the
  // target rank in the stream's empirical CDF on every per-policy stream
  // (n ~ 7-14), and on the pooled corpus stream (n ~ 70) p50 tightens to
  // ±0.10 while p99 must land at rank >= 0.90 without exceeding the max.
  const std::vector<std::string> policies = {"isolated", "pairwise", "oracle",
                                             "online",   "moe",      "quasar"};
  std::vector<double> pooled;
  int streams_checked = 0;
  for (const std::string& policy : policies) {
    const std::string path =
        std::string(SMOE_GOLDEN_DIR) + "/trace_" + policy + ".jsonl";
    std::vector<double> lifetimes;
    for (const OwnedEvent& e : TraceReader::read_file(path)) {
      if (e.type != EventType::kExecutorFinish) continue;
      if (const auto* f = e.find("lifetime_s")) {
        if (const auto* d = std::get_if<double>(&f->value)) lifetimes.push_back(*d);
        if (const auto* i = std::get_if<std::int64_t>(&f->value))
          lifetimes.push_back(static_cast<double>(*i));
      }
    }
    if (lifetimes.size() < 6) continue;
    pooled.insert(pooled.end(), lifetimes.begin(), lifetimes.end());
    P2Quantile p50(0.5);
    for (double x : lifetimes) p50.observe(x);
    EXPECT_NEAR(empirical_rank(lifetimes, p50.value()), 0.5, 0.15)
        << policy << " n=" << lifetimes.size() << " est=" << p50.value();
    ++streams_checked;
  }
  ASSERT_GE(streams_checked, 4) << "golden corpus stopped exercising executors";

  ASSERT_GE(pooled.size(), 40u);
  P2Quantile p50(0.5), p99(0.99);
  for (double x : pooled) {
    p50.observe(x);
    p99.observe(x);
  }
  EXPECT_NEAR(empirical_rank(pooled, p50.value()), 0.5, 0.10) << "pooled p50";
  EXPECT_GE(empirical_rank(pooled, p99.value()), 0.90) << "pooled p99";
  EXPECT_LE(p99.value(), *std::max_element(pooled.begin(), pooled.end()))
      << "p99 must never exceed the observed maximum";
}

TEST(P2Quantile, DropsNonFiniteObservations) {
  // A NaN among the first five would feed std::sort a value with no total
  // order; a NaN later silently corrupts every marker comparison. Both are
  // dropped without advancing the count.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  P2Quantile q(0.5);
  q.observe(1.0);
  q.observe(nan);
  q.observe(3.0);
  q.observe(inf);
  q.observe(-inf);
  EXPECT_EQ(q.count(), 2u);
  EXPECT_DOUBLE_EQ(q.value(), 2.0) << "median of {1, 3}";

  // Same stream with and without interleaved NaNs must agree bitwise.
  std::mt19937_64 rng(99);
  std::normal_distribution<double> n(10.0, 2.0);
  P2Quantile clean(0.9), noisy(0.9);
  for (int i = 0; i < 1000; ++i) {
    const double x = n(rng);
    clean.observe(x);
    noisy.observe(x);
    if (i % 7 == 0) noisy.observe(nan);
    if (i % 11 == 0) noisy.observe(inf);
  }
  EXPECT_EQ(clean.value(), noisy.value());
  EXPECT_EQ(clean.count(), noisy.count());
}

TEST(P2Quantile, SmallSamplesWithNegativesMatchExactQuantiles) {
  // ISSUE regression: small samples (the first minutes of a serving run)
  // must be exact, including all-negative and mixed-sign streams.
  const std::vector<std::vector<double>> streams = {
      {-5.0}, {-5.0, -1.0}, {-5.0, -1.0, -3.0}, {0.0, -2.0, 7.0, -9.0},
      {2.0, 2.0, 2.0, 2.0, 2.0}};
  for (const auto& s : streams) {
    for (double p : {0.25, 0.5, 0.75, 0.99}) {
      P2Quantile q(p);
      for (double x : s) q.observe(x);
      EXPECT_DOUBLE_EQ(q.value(), exact_quantile(s, p))
          << "n=" << s.size() << " p=" << p;
    }
  }
}

TEST(P2Quantile, HeavyDuplicatesStayWithinSampleRange) {
  // Streams that are almost entirely one value starve the interior markers;
  // the estimate must stay inside [min, max] and near the duplicated value.
  P2Quantile p50(0.5), p99(0.99);
  for (int i = 0; i < 2000; ++i) {
    const double x = (i % 100 == 0) ? 50.0 : 1.0;
    p50.observe(x);
    p99.observe(x);
  }
  EXPECT_GE(p50.value(), 1.0);
  EXPECT_LE(p50.value(), 50.0);
  EXPECT_NEAR(p50.value(), 1.0, 1e-3) << "99% of the stream is exactly 1.0";
  EXPECT_GE(p99.value(), 1.0);
  EXPECT_LE(p99.value(), 50.0);
}

TEST(P2Quantile, RejectsDegenerateProbabilities) {
  EXPECT_THROW(P2Quantile(0.0), PreconditionError);
  EXPECT_THROW(P2Quantile(1.0), PreconditionError);
  EXPECT_THROW(P2Quantile(-0.5), PreconditionError);
}

// ---- QuantileEstimator ----

TEST(QuantileEstimator, TracksSummaryAndAllQuantiles) {
  QuantileEstimator est({0.5, 0.9, 0.99});
  EXPECT_EQ(est.count(), 0u);
  EXPECT_EQ(est.min(), 0);
  EXPECT_EQ(est.max(), 0);
  for (int i = 1; i <= 100; ++i) est.observe(i);
  EXPECT_EQ(est.count(), 100u);
  EXPECT_EQ(est.sum(), 5050);
  EXPECT_EQ(est.mean(), 50.5);
  EXPECT_EQ(est.min(), 1);
  EXPECT_EQ(est.max(), 100);
  const std::vector<double> e = est.estimates();
  ASSERT_EQ(e.size(), 3u);
  EXPECT_NEAR(e[0], 50.5, 2.0);
  EXPECT_NEAR(e[1], 90.1, 3.0);
  EXPECT_NEAR(e[2], 99.01, 3.0);
  EXPECT_LT(e[0], e[1]);
  EXPECT_LE(e[1], e[2]);
}

TEST(QuantileEstimator, DropsNonFiniteObservations) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  QuantileEstimator est({0.5});
  est.observe(nan);  // before any finite value: min/max must not be pinned
  est.observe(2.0);
  est.observe(inf);
  est.observe(4.0);
  est.observe(-inf);
  EXPECT_EQ(est.count(), 2u);
  EXPECT_EQ(est.sum(), 6.0);
  EXPECT_EQ(est.mean(), 3.0);
  EXPECT_EQ(est.min(), 2.0);
  EXPECT_EQ(est.max(), 4.0);
}

TEST(QuantileEstimator, RejectsBadProbVectors) {
  EXPECT_THROW(QuantileEstimator({}), PreconditionError);
  EXPECT_THROW(QuantileEstimator({0.9, 0.5}), PreconditionError);
  EXPECT_THROW(QuantileEstimator({0.5, 0.5}), PreconditionError);
}

// ---- WindowedRate ----

TEST(WindowedRate, CountsInsideTheWindowOnly) {
  WindowedRate w(10.0, 10);  // 1 s buckets
  w.add(0.5);
  w.add(1.5);
  w.add(2.5, 3.0);
  EXPECT_EQ(w.window_count(), 3u);
  EXPECT_EQ(w.window_sum(), 5.0);
  EXPECT_EQ(w.total_count(), 3u);
  EXPECT_DOUBLE_EQ(w.rate_per_sec(), 0.3);
  EXPECT_DOUBLE_EQ(w.value_rate_per_sec(), 0.5);

  // Advance past the first two events' buckets: they expire; totals don't.
  w.add(11.2);
  EXPECT_EQ(w.window_count(), 2u) << "events at t=0.5,1.5 left the window";
  EXPECT_EQ(w.window_sum(), 4.0);
  EXPECT_EQ(w.total_count(), 4u);
  EXPECT_EQ(w.total_sum(), 6.0);
  EXPECT_DOUBLE_EQ(w.last_t(), 11.2);
}

TEST(WindowedRate, LongGapClearsTheWholeWindow) {
  WindowedRate w(10.0, 10);
  for (int i = 0; i < 10; ++i) w.add(static_cast<double>(i));
  EXPECT_EQ(w.window_count(), 10u);
  w.add(1000.0);
  EXPECT_EQ(w.window_count(), 1u);
  EXPECT_EQ(w.total_count(), 11u);
}

TEST(WindowedRate, SlightlyRegressingTimeIsClamped) {
  WindowedRate w(10.0, 10);
  w.add(5.0);
  w.add(4.9);  // simulated clocks don't regress; clamp, don't crash
  EXPECT_EQ(w.window_count(), 2u);
  EXPECT_DOUBLE_EQ(w.last_t(), 5.0);
}

TEST(WindowedRate, AdvanceTimeExpiresStaleWindows) {
  // A forever-running service that went quiet must decay to a zero rate
  // instead of reporting the last busy window forever.
  WindowedRate w(10.0, 10);
  for (int i = 0; i < 5; ++i) w.add(static_cast<double>(i));
  EXPECT_EQ(w.window_count(), 5u);
  w.advance_time(7.0);  // still inside the window: nothing expires
  EXPECT_EQ(w.window_count(), 5u);
  w.advance_time(12.5);  // window is now buckets [3,12]: t=0,1,2 expired
  EXPECT_EQ(w.window_count(), 2u);
  w.advance_time(1000.0);  // far past the ring: everything expires
  EXPECT_EQ(w.window_count(), 0u);
  EXPECT_EQ(w.window_sum(), 0.0);
  EXPECT_DOUBLE_EQ(w.rate_per_sec(), 0.0);
  EXPECT_EQ(w.total_count(), 5u) << "totals never expire";
  EXPECT_DOUBLE_EQ(w.last_t(), 1000.0);
  // Slightly regressing advance clamps like add() does.
  w.advance_time(999.0);
  EXPECT_DOUBLE_EQ(w.last_t(), 1000.0);
  // The stream resumes cleanly after the quiet spell.
  w.add(1001.0);
  EXPECT_EQ(w.window_count(), 1u);
}

TEST(WindowedRate, AdvanceTimeBeforeFirstAddIsHarmless) {
  WindowedRate w(10.0, 10);
  w.advance_time(500.0);
  EXPECT_EQ(w.window_count(), 0u);
  w.add(500.5);
  w.add(501.5);
  EXPECT_EQ(w.window_count(), 2u);
}

TEST(WindowedRate, SurvivesAstronomicalTimes) {
  // t far past what int64 bucket arithmetic can express: the raw cast in the
  // old code was UB. The ring rebases (a jump that large clears it anyway)
  // and keeps exact in-window semantics at the new epoch.
  WindowedRate w(10.0, 10);
  w.add(1.0);
  w.add(2.0);
  const double huge = 1e300;
  w.add(huge);
  EXPECT_EQ(w.window_count(), 1u) << "pre-jump events expired";
  EXPECT_EQ(w.total_count(), 3u);
  w.add(huge + 1.0);  // rounds to the same instant: same bucket, no re-clear
  EXPECT_EQ(w.window_count(), 2u);
  w.advance_time(huge * 2);  // another overflow-scale jump: rebase + expire
  EXPECT_EQ(w.window_count(), 0u);
  // And advance_time alone at a huge t (no add first) must also be safe.
  WindowedRate v(10.0, 10);
  v.add(3.0);
  v.advance_time(1e280);
  EXPECT_EQ(v.window_count(), 0u);
  v.add(1e280 + 0.5);
  EXPECT_EQ(v.window_count(), 1u);
}

TEST(WindowedRate, RejectsDegenerateConfig) {
  EXPECT_THROW(WindowedRate(0.0), PreconditionError);
  EXPECT_THROW(WindowedRate(-1.0), PreconditionError);
  EXPECT_THROW(WindowedRate(10.0, 0), PreconditionError);
}

// ---- Registry integration ----

TEST(Registry, QuantileInstrumentIsStableAndChecked) {
  Registry reg;
  QuantileEstimator& q1 = reg.quantile("sojourn", {0.5, 0.99});
  QuantileEstimator& q2 = reg.quantile("sojourn", {0.5, 0.99});
  EXPECT_EQ(&q1, &q2) << "same name + same probs must return the same instrument";
  EXPECT_THROW(reg.quantile("sojourn", {0.5, 0.9}), PreconditionError)
      << "mismatched probs must be rejected, not silently ignored";
}

TEST(Registry, WindowedRateInstrumentIsStableAndChecked) {
  Registry reg;
  WindowedRate& w1 = reg.windowed_rate("ooms", 600.0);
  WindowedRate& w2 = reg.windowed_rate("ooms", 600.0);
  EXPECT_EQ(&w1, &w2);
  EXPECT_THROW(reg.windowed_rate("ooms", 300.0), PreconditionError);
  EXPECT_THROW(reg.windowed_rate("ooms", 600.0, 8), PreconditionError);
}

TEST(Registry, SnapshotCarriesQuantilesAndWindows) {
  const auto feed = [](Registry& reg) {
    QuantileEstimator& q = reg.quantile("wait", {0.5, 0.9});
    WindowedRate& w = reg.windowed_rate("spawns", 100.0);
    for (int i = 1; i <= 50; ++i) {
      q.observe(static_cast<double>(i));
      w.add(static_cast<double>(i), 2.0);
    }
  };
  Registry a, b;
  feed(a);
  feed(b);
  const MetricsSnapshot sa = a.snapshot();
  EXPECT_EQ(sa, b.snapshot()) << "identical streams must snapshot identically";

  ASSERT_EQ(sa.quantiles.count("wait"), 1u);
  const MetricsSnapshot::QuantileData& qd = sa.quantiles.at("wait");
  EXPECT_EQ(qd.probs, (std::vector<double>{0.5, 0.9}));
  ASSERT_EQ(qd.estimates.size(), 2u);
  EXPECT_EQ(qd.count, 50u);
  EXPECT_EQ(qd.min, 1);
  EXPECT_EQ(qd.max, 50);

  ASSERT_EQ(sa.windows.count("spawns"), 1u);
  const MetricsSnapshot::WindowData& wd = sa.windows.at("spawns");
  EXPECT_EQ(wd.window_seconds, 100.0);
  EXPECT_EQ(wd.total_count, 50u);
  EXPECT_EQ(wd.total_sum, 100.0);
  EXPECT_EQ(wd.window_count, 50u);
}

}  // namespace
