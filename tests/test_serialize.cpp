// Round-trip and failure-injection tests for selector persistence.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "core/serialize.h"
#include "sched/training_data.h"
#include "sparksim/app_probe.h"
#include "workloads/features.h"

namespace {

using namespace smoe;

core::SelectorModel trained_model(const wl::FeatureModel& features, core::ExpertPool& pool) {
  return core::train_selector(pool, sched::make_training_set(features, 2));
}

TEST(Serialize, RoundTripPreservesPredictions) {
  const wl::FeatureModel features(1);
  core::ExpertPool pool = core::ExpertPool::paper_default();
  const core::SelectorModel original = trained_model(features, pool);

  std::stringstream buffer;
  core::save_selector(original, buffer);
  const core::SelectorModel loaded = core::load_selector(buffer);

  EXPECT_EQ(loaded.programs.size(), original.programs.size());
  EXPECT_EQ(loaded.pca.n_components(), original.pca.n_components());

  const core::MoePredictor a(pool, original);
  const core::MoePredictor b(pool, loaded);
  for (const auto& bench : wl::all_spark_benchmarks()) {
    Rng rng(Rng::derive(3, bench.name));
    const ml::Vector raw = features.sample(bench, rng);
    const core::Selection sa = a.select(raw);
    const core::Selection sb = b.select(raw);
    EXPECT_EQ(sa.expert_index, sb.expert_index) << bench.name;
    EXPECT_EQ(sa.nearest_program, sb.nearest_program) << bench.name;
    EXPECT_DOUBLE_EQ(sa.distance, sb.distance) << bench.name;
  }
}

TEST(Serialize, RoundTripPreservesProgramRecords) {
  const wl::FeatureModel features(1);
  core::ExpertPool pool = core::ExpertPool::paper_default();
  const core::SelectorModel original = trained_model(features, pool);
  std::stringstream buffer;
  core::save_selector(original, buffer);
  const core::SelectorModel loaded = core::load_selector(buffer);
  for (std::size_t i = 0; i < original.programs.size(); ++i) {
    EXPECT_EQ(loaded.programs[i].name, original.programs[i].name);
    EXPECT_EQ(loaded.programs[i].expert_index, original.programs[i].expert_index);
    EXPECT_DOUBLE_EQ(loaded.programs[i].fit.params.m, original.programs[i].fit.params.m);
    EXPECT_DOUBLE_EQ(loaded.programs[i].fit.params.b, original.programs[i].fit.params.b);
    EXPECT_EQ(loaded.programs[i].pc_features, original.programs[i].pc_features);
  }
}

TEST(Serialize, FileRoundTrip) {
  const wl::FeatureModel features(1);
  core::ExpertPool pool = core::ExpertPool::paper_default();
  const core::SelectorModel original = trained_model(features, pool);
  const std::string path = ::testing::TempDir() + "/sparkmoe_selector_test.txt";
  core::save_selector_file(original, path);
  const core::SelectorModel loaded = core::load_selector_file(path);
  EXPECT_EQ(loaded.programs.size(), original.programs.size());
}

TEST(Serialize, RejectsGarbageAndWrongVersion) {
  {
    std::stringstream buffer("not-a-model 1");
    EXPECT_THROW(core::load_selector(buffer), core::SerializationError);
  }
  {
    std::stringstream buffer("sparkmoe-selector 99\n");
    EXPECT_THROW(core::load_selector(buffer), core::SerializationError);
  }
  EXPECT_THROW(core::load_selector_file("/no/such/dir/model.txt"),
               core::SerializationError);
}

TEST(Serialize, RejectsTruncatedPayload) {
  const wl::FeatureModel features(1);
  core::ExpertPool pool = core::ExpertPool::paper_default();
  const core::SelectorModel original = trained_model(features, pool);
  std::stringstream buffer;
  core::save_selector(original, buffer);
  const std::string full = buffer.str();
  // Chop the payload at several points; every prefix must be rejected, never
  // silently produce a half-loaded model.
  for (const double frac : {0.2, 0.5, 0.8, 0.95}) {
    std::stringstream cut(full.substr(0, static_cast<std::size_t>(frac * full.size())));
    EXPECT_THROW(core::load_selector(cut), core::SerializationError) << frac;
  }
}

TEST(Serialize, UntrainedModelRejectedOnSave) {
  core::SelectorModel empty;
  std::stringstream buffer;
  EXPECT_THROW(core::save_selector(empty, buffer), PreconditionError);
}

}  // namespace
