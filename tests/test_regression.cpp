// Tests for the memory-function regression substrate (Table 1 families):
// exact parameter recovery, two-point calibration, inversion round-trips and
// family discrimination.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "ml/regression.h"

namespace {

using namespace smoe;
using ml::CurveKind;
using ml::CurveParams;

std::vector<double> log_spaced(double lo, double hi, std::size_t n) {
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i)
    xs[i] = lo * std::pow(hi / lo, static_cast<double>(i) / static_cast<double>(n - 1));
  return xs;
}

struct FamilyCase {
  CurveKind kind;
  CurveParams params;
  std::string name;
};

std::vector<FamilyCase> family_cases() {
  return {
      {CurveKind::kPowerLaw, {0.002, 0.9}, "power"},
      {CurveKind::kPowerLaw, {0.05, 0.75}, "power_sublinear"},
      {CurveKind::kExponential, {5.768, 4.479 / 1024.0}, "exp_hbsort"},
      {CurveKind::kExponential, {3.2, 0.002}, "exp_small"},
      {CurveKind::kNapierianLog, {4.0, 1.79}, "log_pagerank"},
      {CurveKind::kNapierianLog, {7.0, 2.4}, "log_steep"},
  };
}

class EveryFamily : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(EveryFamily, NoiselessFitRecoversParameters) {
  const auto& c = GetParam();
  const auto xs = log_spaced(300, 1e6, 10);
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(ml::curve_eval(c.kind, c.params, x));
  const ml::CurveFit fit = ml::fit_curve(c.kind, xs, ys);
  EXPECT_NEAR(fit.params.m, c.params.m, 0.02 * std::abs(c.params.m) + 1e-6) << c.name;
  EXPECT_NEAR(fit.params.b, c.params.b, 0.02 * std::abs(c.params.b) + 1e-6) << c.name;
  EXPECT_GT(fit.r2, 0.999) << c.name;
}

TEST_P(EveryFamily, BestFitSelectsTrueFamilyUnderMildNoise) {
  const auto& c = GetParam();
  Rng rng(11);
  const auto xs = log_spaced(300, 1e6, 10);
  std::vector<double> ys;
  for (const double x : xs)
    ys.push_back(ml::curve_eval(c.kind, c.params, x) * rng.normal(1.0, 0.002));
  EXPECT_EQ(ml::best_fit(xs, ys).kind, c.kind) << c.name;
}

TEST_P(EveryFamily, TwoPointCalibrationIsExact) {
  const auto& c = GetParam();
  const double x1 = 700, x2 = 3000;
  const double y1 = ml::curve_eval(c.kind, c.params, x1);
  const double y2 = ml::curve_eval(c.kind, c.params, x2);
  const CurveParams cal = ml::calibrate_two_point(c.kind, x1, y1, x2, y2);
  // The calibrated curve must pass through both probes...
  EXPECT_NEAR(ml::curve_eval(c.kind, cal, x1), y1, 1e-6 * y1) << c.name;
  EXPECT_NEAR(ml::curve_eval(c.kind, cal, x2), y2, 1e-6 * y2) << c.name;
  // ...and extrapolate like the generating curve.
  const double far = 5e5;
  EXPECT_NEAR(ml::curve_eval(c.kind, cal, far), ml::curve_eval(c.kind, c.params, far),
              0.02 * ml::curve_eval(c.kind, c.params, far))
      << c.name;
}

TEST_P(EveryFamily, InverseRoundTrip) {
  const auto& c = GetParam();
  for (const double x : {500.0, 5000.0, 50000.0}) {
    const double y = ml::curve_eval(c.kind, c.params, x);
    const double back = ml::curve_inverse(c.kind, c.params, y);
    if (std::isfinite(back)) {
      EXPECT_NEAR(back, x, 1e-6 * x) << c.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Families, EveryFamily, ::testing::ValuesIn(family_cases()),
                         [](const ::testing::TestParamInfo<FamilyCase>& info) {
                           return info.param.name;
                         });

TEST(CurveEval, ExponentialSaturatesAtM) {
  const CurveParams p = {6.0, 0.01};
  EXPECT_LT(ml::curve_eval(CurveKind::kExponential, p, 1e9), 6.0 + 1e-9);
  EXPECT_NEAR(ml::curve_eval(CurveKind::kExponential, p, 1e9), 6.0, 1e-6);
}

TEST(CurveInverse, ExponentialBudgetAboveSaturationIsInfinite) {
  const CurveParams p = {6.0, 0.01};
  EXPECT_TRUE(std::isinf(ml::curve_inverse(CurveKind::kExponential, p, 7.0)));
  EXPECT_TRUE(std::isinf(ml::curve_inverse(CurveKind::kExponential, p, 6.0)));
}

TEST(CurveInverse, NonPositiveBudgetGivesZero) {
  EXPECT_DOUBLE_EQ(ml::curve_inverse(CurveKind::kPowerLaw, {1.0, 1.0}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(ml::curve_inverse(CurveKind::kExponential, {1.0, 1.0}, -1.0), 0.0);
}

TEST(CurveInverse, DegenerateParamsHandled) {
  // Non-increasing curves: everything or nothing fits.
  EXPECT_TRUE(std::isinf(ml::curve_inverse(CurveKind::kPowerLaw, {-1.0, 1.0}, 5.0)));
  EXPECT_TRUE(std::isinf(ml::curve_inverse(CurveKind::kNapierianLog, {2.0, -0.5}, 5.0)));
  EXPECT_DOUBLE_EQ(ml::curve_inverse(CurveKind::kNapierianLog, {9.0, -0.5}, 5.0), 0.0);
}

TEST(CurveEval, LogRejectsNonPositiveX) {
  EXPECT_THROW(ml::curve_eval(CurveKind::kNapierianLog, {1.0, 1.0}, 0.0), PreconditionError);
}

TEST(Calibrate, RejectsBadProbes) {
  EXPECT_THROW(ml::calibrate_two_point(CurveKind::kPowerLaw, 10, 1, 5, 2), PreconditionError);
  EXPECT_THROW(ml::calibrate_two_point(CurveKind::kPowerLaw, 0, 1, 5, 2), PreconditionError);
  EXPECT_THROW(ml::calibrate_two_point(CurveKind::kPowerLaw, 1, -1, 5, 2), PreconditionError);
}

TEST(Calibrate, ExponentialSaturatedProbesClampGracefully) {
  // y2 <= y1 means both probes sit on the plateau; m should be ~y1.
  const CurveParams p = ml::calibrate_two_point(CurveKind::kExponential, 1000, 5.0, 2000, 4.99);
  EXPECT_NEAR(p.m, 5.0, 0.05);
  // And the curve stays ~flat beyond the probes.
  EXPECT_NEAR(ml::curve_eval(CurveKind::kExponential, p, 1e6), 5.0, 0.1);
}

TEST(Calibrate, ExponentialLinearRegimeProbes) {
  // y2/y1 == x2/x1 implies the curve still looks linear: a tiny rate.
  const CurveParams p = ml::calibrate_two_point(CurveKind::kExponential, 100, 1.0, 400, 4.0);
  EXPECT_NEAR(ml::curve_eval(CurveKind::kExponential, p, 100), 1.0, 0.05);
  EXPECT_NEAR(ml::curve_eval(CurveKind::kExponential, p, 400), 4.0, 0.2);
}

TEST(Ols, RecoversLine) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {3, 5, 7, 9};  // y = 1 + 2x
  const ml::LinearFit f = ml::ols(xs, ys);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
}

TEST(Ols, DegenerateXsThrow) {
  const std::vector<double> xs = {2, 2};
  const std::vector<double> ys = {1, 2};
  EXPECT_THROW(ml::ols(xs, ys), PreconditionError);
}

TEST(FitCurve, InputValidation) {
  const std::vector<double> one = {1.0};
  EXPECT_THROW(ml::fit_curve(CurveKind::kPowerLaw, one, one), PreconditionError);
  const std::vector<double> same = {5.0, 5.0};
  const std::vector<double> ys = {1.0, 2.0};
  EXPECT_THROW(ml::fit_curve(CurveKind::kPowerLaw, same, ys), PreconditionError);
  const std::vector<double> neg = {-1.0, 2.0};
  EXPECT_THROW(ml::fit_curve(CurveKind::kPowerLaw, neg, ys), PreconditionError);
}

TEST(FitCurve, PowerFitMinimizesLinearSpaceError) {
  // A log curve sampled over a wide range: the dedicated log family must win
  // even though a power law can chase it in log-log space.
  const CurveParams truth = {7.0, 1.5};
  const auto xs = log_spaced(300, 1e6, 12);
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(ml::curve_eval(CurveKind::kNapierianLog, truth, x));
  const ml::CurveFit log_fit = ml::fit_curve(CurveKind::kNapierianLog, xs, ys);
  const ml::CurveFit pow_fit = ml::fit_curve(CurveKind::kPowerLaw, xs, ys);
  EXPECT_GT(log_fit.r2, pow_fit.r2);
}

}  // namespace
