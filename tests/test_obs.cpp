// Tests for the observability layer (src/obs): registry instrument
// semantics, JSONL escaping, Chrome-trace well-formedness, the engine's
// event emission, trace determinism, and the zero-cost-when-off property.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "obs/cli.h"
#include "obs/flight_recorder.h"
#include "obs/registry.h"
#include "obs/report.h"
#include "obs/sink.h"
#include "obs/sink_factory.h"
#include "sched/experiment.h"
#include "sched/policies_basic.h"
#include "sched/policies_learned.h"
#include "sparksim/engine.h"
#include "workloads/features.h"

namespace {

using namespace smoe;

// ---- registry instruments ----

TEST(Registry, CounterGaugeSemantics) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("requests");
  c.inc();
  c.inc(4);
  EXPECT_EQ(reg.counter("requests").value(), 5u);
  // Same name -> same instrument.
  EXPECT_EQ(&reg.counter("requests"), &c);

  obs::Gauge& g = reg.gauge("depth");
  g.set(3.0);
  g.set(1.5);
  EXPECT_DOUBLE_EQ(reg.gauge("depth").value(), 1.5);
  g.track_max(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.track_max(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
}

TEST(Registry, HistogramBucketsAndStats) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("lat", {1.0, 10.0, 100.0});
  ASSERT_EQ(h.buckets().size(), 4u);  // 3 bounds + overflow
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (bounds are inclusive)
  h.observe(5.0);    // <= 10
  h.observe(1000.0); // overflow
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 0u);
  EXPECT_EQ(h.buckets()[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_NEAR(h.mean(), 1006.5 / 4.0, 1e-12);

  // Unsorted bounds and conflicting re-registration are precondition errors.
  EXPECT_THROW(reg.histogram("bad", {5.0, 1.0}), PreconditionError);
  EXPECT_THROW(reg.histogram("lat", {2.0}), PreconditionError);
}

TEST(Registry, HistogramLayoutMismatchReportsBothLayouts) {
  obs::Registry reg;
  reg.histogram("lat", {1.0, 10.0});
  // Regression: a mismatched re-registration must throw (never hand back the
  // old instrument as if the new layout applied) and name both layouts.
  try {
    reg.histogram("lat", {2.0, 20.0});
    FAIL() << "mismatched bucket layout must throw";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lat"), std::string::npos) << what;
    EXPECT_NE(what.find("{1, 10}"), std::string::npos) << what;
    EXPECT_NE(what.find("{2, 20}"), std::string::npos) << what;
  }
  // The original instrument survives a rejected re-registration intact.
  obs::Histogram& h = reg.histogram("lat", {1.0, 10.0});
  EXPECT_EQ(h.bounds(), (std::vector<double>{1.0, 10.0}));
}

TEST(Registry, SnapshotIsDeepAndComparable) {
  obs::Registry reg;
  reg.counter("a").inc();
  reg.gauge("b").set(2.5);
  reg.histogram("c", {1.0}).observe(0.5);
  const obs::MetricsSnapshot s1 = reg.snapshot();
  const obs::MetricsSnapshot s2 = reg.snapshot();
  EXPECT_EQ(s1, s2);
  reg.counter("a").inc();
  const obs::MetricsSnapshot s3 = reg.snapshot();
  EXPECT_NE(s1, s3);
  EXPECT_EQ(s1.counters.at("a"), 1u);
  EXPECT_EQ(s3.counters.at("a"), 2u);
  EXPECT_EQ(s1.histograms.at("c").count, 1u);
}

// ---- sinks ----

TEST(Sinks, CountingSinkCountsPerType) {
  obs::CountingSink sink;
  sink.emit(obs::Event(0.0, obs::EventType::kAppSubmit));
  sink.emit(obs::Event(1.0, obs::EventType::kAppSubmit));
  sink.emit(obs::Event(2.0, obs::EventType::kExecutorOom));
  EXPECT_EQ(sink.count(obs::EventType::kAppSubmit), 2u);
  EXPECT_EQ(sink.count(obs::EventType::kExecutorOom), 1u);
  EXPECT_EQ(sink.count(obs::EventType::kRunEnd), 0u);
  EXPECT_EQ(sink.total(), 3u);
  EXPECT_EQ(sink.distinct_types(), 2u);
}

TEST(Sinks, JsonlEscapingAndLayout) {
  std::ostringstream os;
  obs::JsonlSink sink(os);
  sink.emit(obs::Event(1.5, obs::EventType::kAppSubmit)
                .with("benchmark", "we\"ird\\name\n\tx\x01")
                .with("items", std::int64_t{42})
                .with("frac", 0.25));
  sink.close();  // the sink buffers ~1 MiB; close() drains to the stream
  const std::string line = os.str();
  EXPECT_EQ(line,
            "{\"t\":1.5,\"type\":\"app_submit\","
            "\"benchmark\":\"we\\\"ird\\\\name\\n\\tx\\u0001\","
            "\"items\":42,\"frac\":0.25}\n");
}

TEST(Sinks, JsonlNonFiniteBecomesNull) {
  std::ostringstream os;
  obs::JsonlSink sink(os);
  sink.emit(obs::Event(0.0, obs::EventType::kRunEnd)
                .with("bad", std::numeric_limits<double>::infinity()));
  EXPECT_NE(os.str().find("\"bad\":null"), std::string::npos);
}

// The hot emit path formats with the cursor writers + memo tables in
// sink.cpp; this reference (and the sink's own slow path) uses the
// append_json_* helpers. Differential test: random and adversarial events
// must produce byte-identical JSONL either way. Values repeat (drawn from
// small pools) so memo hits are exercised alongside misses; occasional huge
// strings overflow the stack scratch and force the emit_slow fallback; a
// tiny buffer forces frequent mid-run drains.
TEST(Sinks, CursorFormattersMatchAppendHelpers) {
  std::mt19937 rng(20260807);
  static constexpr const char* kKeys[] = {"node", "reserved", "frac",   "benchmark",
                                          "items", "mode",    "heap_gb", "chunk"};
  std::vector<double> dbl_pool = {0.0,
                                  -0.0,
                                  0.25,
                                  0.1,
                                  1.0 / 3.0,
                                  1e-9,
                                  1e300,
                                  -1e300,
                                  std::numeric_limits<double>::quiet_NaN(),
                                  std::numeric_limits<double>::infinity(),
                                  -std::numeric_limits<double>::infinity(),
                                  std::numeric_limits<double>::denorm_min()};
  for (int i = 0; i < 32; ++i)
    dbl_pool.push_back(std::uniform_real_distribution<double>(-1e6, 1e6)(rng));
  std::vector<std::int64_t> int_pool = {0,     1,     -1,
                                        7,     42,    -99,
                                        12345, std::numeric_limits<std::int64_t>::min(),
                                        std::numeric_limits<std::int64_t>::max()};
  for (int i = 0; i < 16; ++i)
    int_pool.push_back(std::uniform_int_distribution<std::int64_t>(-1000000, 1000000)(rng));
  auto random_string = [&](bool huge) {
    const std::size_t len =
        huge ? 6000 : std::uniform_int_distribution<std::size_t>(0, 40)(rng);
    std::string s;
    s.reserve(len);
    for (std::size_t i = 0; i < len; ++i)
      s.push_back(static_cast<char>(std::uniform_int_distribution<int>(0, 127)(rng)));
    return s;
  };

  std::ostringstream os;
  obs::JsonlSink sink(os, {.buffer_bytes = 256});
  std::string want;
  for (int iter = 0; iter < 500; ++iter) {
    const double t = dbl_pool[rng() % dbl_pool.size()];
    const auto type = static_cast<obs::EventType>(rng() % obs::kEventTypeCount);
    obs::Event e(t, type);
    want += "{\"t\":";
    obs::detail::append_json_number(want, t);
    want += ",\"type\":\"";
    want += obs::to_string(type);
    want += '"';
    const int n_fields = static_cast<int>(rng() % 8);
    std::vector<std::string> string_values(n_fields);  // outlive emit() below
    for (int f = 0; f < n_fields; ++f) {
      const char* key = kKeys[rng() % (sizeof kKeys / sizeof *kKeys)];
      want += ",\"";
      want += key;
      want += "\":";
      switch (rng() % 3) {
        case 0: {
          const std::int64_t v = int_pool[rng() % int_pool.size()];
          e.with(key, v);
          obs::detail::append_json_number(want, v);
          break;
        }
        case 1: {
          const double v = dbl_pool[rng() % dbl_pool.size()];
          e.with(key, v);
          obs::detail::append_json_number(want, v);
          break;
        }
        default: {
          string_values[f] = random_string(rng() % 50 == 0);
          e.with(key, std::string_view(string_values[f]));
          obs::detail::append_json_string(want, string_values[f]);
          break;
        }
      }
    }
    want += "}\n";
    sink.emit(e);
  }
  sink.close();
  EXPECT_EQ(os.str(), want);
}

/// Minimal structural JSON check: quotes, braces and brackets balance
/// outside of strings. Catches truncated or mis-nested emissions.
void expect_balanced_json(const std::string& s) {
  int depth_obj = 0, depth_arr = 0;
  bool in_string = false, escaped = false;
  for (const char c : s) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++depth_obj; break;
      case '}': --depth_obj; break;
      case '[': ++depth_arr; break;
      case ']': --depth_arr; break;
      default: break;
    }
    ASSERT_GE(depth_obj, 0);
    ASSERT_GE(depth_arr, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth_obj, 0);
  EXPECT_EQ(depth_arr, 0);
}

TEST(Sinks, ChromeTraceWellFormed) {
  std::ostringstream os;
  {
    obs::ChromeTraceSink sink(os);
    sink.emit(obs::Event(0.0, obs::EventType::kExecutorSpawn)
                  .with("node", 3)
                  .with("benchmark", "HB.Sort")
                  .with("exec", 0));
    sink.emit(obs::Event(2.0, obs::EventType::kMonitorReport).with("mean_cpu", 0.5));
    sink.emit(obs::Event(5.0, obs::EventType::kExecutorFinish)
                  .with("node", 3)
                  .with("benchmark", "HB.Sort")
                  .with("exec", 0));
  }  // destructor closes the array
  const std::string trace = os.str();
  expect_balanced_json(trace);
  EXPECT_EQ(trace.front(), '[');
  // Executor lifecycle renders as a matched B/E slice pair named identically.
  EXPECT_NE(trace.find("\"name\":\"executor:HB.Sort\",\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"executor:HB.Sort\",\"ph\":\"E\""), std::string::npos);
  // ts is microseconds: t=5 s -> 5e6 us.
  EXPECT_NE(trace.find("\"ts\":5e+06"), std::string::npos);
  // Instant events carry a scope.
  EXPECT_NE(trace.find("\"s\":\"p\""), std::string::npos);
}

TEST(Sinks, TeeForwardsToBoth) {
  obs::CountingSink a, b;
  obs::TeeSink tee(a, b);
  EXPECT_TRUE(tee.enabled());
  tee.emit(obs::Event(0.0, obs::EventType::kRunStart));
  EXPECT_EQ(a.total(), 1u);
  EXPECT_EQ(b.total(), 1u);
}

// ---- engine integration ----

sim::SimConfig small_config() {
  sim::SimConfig cfg;
  cfg.seed = 77;
  return cfg;
}

const wl::TaskMix& oomy_mix() {
  // Large inputs + MoE predictions give a busy run: co-location, monitor
  // reports, degradations; exact event mix depends on the seed.
  static const wl::TaskMix mix = {{"HB.TeraSort", 262144.0},
                                  {"SP.Gmm", 131072.0},
                                  {"SP.ALS", 65536.0},
                                  {"HB.Scan", 131072.0},
                                  {"SP.LDA", 65536.0},
                                  {"BDB.PageRank", 131072.0}};
  return mix;
}

TEST(EngineObs, FullRunEmitsRichEventVocabulary) {
  const wl::FeatureModel features(1);
  obs::CountingSink counter;
  sim::SimConfig cfg = small_config();
  cfg.sink = &counter;
  sim::ClusterSim sim(cfg, features);
  sched::MoePolicy moe(features, cfg.seed);
  const sim::SimResult r = sim.run(oomy_mix(), moe);

  // Acceptance criterion: a full run emits >= 8 distinct event types.
  EXPECT_GE(counter.distinct_types(), 8u);
  EXPECT_EQ(counter.count(obs::EventType::kRunStart), 1u);
  EXPECT_EQ(counter.count(obs::EventType::kRunEnd), 1u);
  EXPECT_EQ(counter.count(obs::EventType::kAppSubmit), oomy_mix().size());
  EXPECT_EQ(counter.count(obs::EventType::kAppFinish), oomy_mix().size());
  EXPECT_EQ(counter.count(obs::EventType::kProfilingStart),
            counter.count(obs::EventType::kProfilingEnd));
  EXPECT_EQ(counter.count(obs::EventType::kExecutorSpawn), r.executors_spawned);
  EXPECT_EQ(counter.count(obs::EventType::kDispatch), r.executors_spawned);
  EXPECT_EQ(counter.count(obs::EventType::kExecutorOom), r.oom_total);
  EXPECT_EQ(counter.count(obs::EventType::kExecutorOom) +
                counter.count(obs::EventType::kExecutorFinish),
            r.executors_spawned);
  EXPECT_GE(counter.count(obs::EventType::kMonitorReport), 1u);
}

TEST(EngineObs, MetricsSnapshotMatchesResultTotals) {
  const wl::FeatureModel features(1);
  sim::ClusterSim sim(small_config(), features);
  sched::MoePolicy moe(features, 77);
  const sim::SimResult r = sim.run(oomy_mix(), moe);

  const obs::MetricsSnapshot& m = r.metrics;
  EXPECT_EQ(m.counters.at("executors_spawned"), r.executors_spawned);
  EXPECT_EQ(m.counters.at("oom_total"), r.oom_total);
  EXPECT_EQ(m.counters.at("apps_completed"), r.apps.size());
  EXPECT_EQ(m.counters.at("executor_spills_total") + m.counters.at("executor_thrashes_total"),
            r.executors_degraded);
  EXPECT_DOUBLE_EQ(m.gauges.at("makespan_seconds"), r.makespan);
  EXPECT_DOUBLE_EQ(m.gauges.at("peak_node_occupancy"),
                   static_cast<double>(r.peak_node_occupancy));
  // Every executor's lifetime was observed exactly once.
  EXPECT_EQ(m.histograms.at("executor_lifetime_seconds").count, r.executors_spawned);
  // The MoE policy recorded its own profiling telemetry through the binding.
  EXPECT_EQ(m.counters.at("moe_profiles_total"), oomy_mix().size());
}

std::string run_trace(std::uint64_t seed) {
  const wl::FeatureModel features(1);
  std::ostringstream os;
  obs::JsonlSink sink(os);
  sim::SimConfig cfg = small_config();
  cfg.seed = seed;
  cfg.sink = &sink;
  sim::ClusterSim sim(cfg, features);
  sched::MoePolicy moe(features, seed);
  sim.run(oomy_mix(), moe);
  return os.str();
}

TEST(EngineObs, IdenticalSeedsProduceByteIdenticalTraces) {
  const std::string t1 = run_trace(2017);
  const std::string t2 = run_trace(2017);
  EXPECT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2);  // byte-identical, not just equivalent
  // And a different seed actually changes the trace (noise-driven details).
  EXPECT_NE(t1, run_trace(2018));
}

std::string run_trace_with(obs::SinkOptions opts, bool chrome) {
  const wl::FeatureModel features(1);
  std::ostringstream os;
  std::unique_ptr<obs::EventSink> sink;
  if (chrome)
    sink = std::make_unique<obs::ChromeTraceSink>(os, opts);
  else
    sink = std::make_unique<obs::JsonlSink>(os, opts);
  sim::SimConfig cfg = small_config();
  cfg.sink = sink.get();
  sim::ClusterSim sim(cfg, features);
  sched::MoePolicy moe(features, cfg.seed);
  sim.run(oomy_mix(), moe);
  sink->close();
  return os.str();
}

TEST(Sinks, AsyncWriterByteIdenticalToSync) {
  // A tiny buffer forces many mid-run drains, so the async writer's queue
  // actually carries multiple buffers whose write order must be FIFO.
  obs::SinkOptions sync;
  sync.buffer_bytes = 1024;
  obs::SinkOptions async = sync;
  async.async_io = true;
  for (const bool chrome : {false, true}) {
    const std::string sync_out = run_trace_with(sync, chrome);
    const std::string async_out = run_trace_with(async, chrome);
    EXPECT_FALSE(sync_out.empty());
    EXPECT_EQ(sync_out, async_out) << (chrome ? "chrome" : "jsonl");
  }
  // Buffer capacity is not observable in the output either.
  EXPECT_EQ(run_trace_with(obs::SinkOptions{}, false), run_trace_with(async, false));
}

TEST(SinkFactory, WritesPerLabelFilesAndSanitizesNames) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "smoe_sink_factory_test";
  std::filesystem::remove_all(dir);
  obs::FileSinkFactory factory(dir);
  {
    const std::unique_ptr<obs::EventSink> sink = factory.make("Ours (MoE)/mix0");
    sink->emit(obs::Event(0.0, obs::EventType::kRunStart).with("policy", "p"));
    sink->close();
  }
  factory.make("Ours (MoE)/mix0")->close();  // repeated label must not overwrite

  const auto files = factory.created();
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0].filename().string(), "Ours__MoE__mix0.jsonl");
  EXPECT_EQ(files[1].filename().string(), "Ours__MoE__mix0.2.jsonl");
  for (const auto& f : files) EXPECT_TRUE(std::filesystem::exists(f)) << f;

  std::ifstream in(files[0]);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"run_start\""), std::string::npos) << line;
  std::filesystem::remove_all(dir);
}

TEST(EngineObs, SinksAreZeroCost) {
  // Acceptance criterion: enabling any sink changes SimResult by exactly
  // nothing (sinks are passive observers).
  const wl::FeatureModel features(1);
  auto run_with = [&](obs::EventSink* sink) {
    sim::SimConfig cfg = small_config();
    cfg.sink = sink;
    sim::ClusterSim sim(cfg, features);
    sched::MoePolicy moe(features, cfg.seed);
    return sim.run(oomy_mix(), moe);
  };
  const sim::SimResult none = run_with(nullptr);
  obs::NullSink null;
  const sim::SimResult with_null = run_with(&null);
  std::ostringstream os;
  obs::JsonlSink jsonl(os);
  const sim::SimResult with_jsonl = run_with(&jsonl);

  auto expect_same = [](const sim::SimResult& a, const sim::SimResult& b) {
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.oom_total, b.oom_total);
    EXPECT_EQ(a.executors_spawned, b.executors_spawned);
    EXPECT_EQ(a.executors_degraded, b.executors_degraded);
    EXPECT_EQ(a.peak_node_occupancy, b.peak_node_occupancy);
    EXPECT_EQ(a.reserved_gib_hours, b.reserved_gib_hours);
    EXPECT_EQ(a.used_gib_hours, b.used_gib_hours);
    ASSERT_EQ(a.apps.size(), b.apps.size());
    for (std::size_t i = 0; i < a.apps.size(); ++i) {
      EXPECT_EQ(a.apps[i].finish, b.apps[i].finish);
      EXPECT_EQ(a.apps[i].oom_events, b.apps[i].oom_events);
    }
    EXPECT_EQ(a.metrics, b.metrics);  // registry is sink-independent too
  };
  expect_same(none, with_null);
  expect_same(none, with_jsonl);
  EXPECT_FALSE(os.str().empty());
}

TEST(EngineObs, BaselineAndIsolatedRunsAreNeverTraced) {
  const wl::FeatureModel features(1);
  obs::CountingSink counter;
  sim::SimConfig cfg = small_config();
  cfg.sink = &counter;
  sched::ExperimentRunner runner(cfg, features, 1, 1);
  sched::MoePolicy moe(features, cfg.seed);
  const wl::TaskMix mix = {{"HB.Scan", 30720.0}, {"SP.Gmm", 30720.0}};
  runner.run_mix(mix, moe);
  // One traced run: the policy's own. Baseline + isolated-time measurement
  // runs stay silent, so the trace holds exactly one schedule.
  EXPECT_EQ(counter.count(obs::EventType::kRunStart), 1u);
  EXPECT_EQ(counter.count(obs::EventType::kRunEnd), 1u);
}

// ---- reporter ----

TEST(Reporter, TextAndJsonRenderings) {
  const wl::FeatureModel features(1);
  sched::ExperimentRunner runner(small_config(), features, 1, 1);
  sched::MoePolicy moe(features, 77);
  const auto run = runner.run_mix({{"HB.Scan", 30720.0}, {"SP.Gmm", 30720.0}}, moe);

  const obs::RunReport report = sched::make_run_report(run, "test run");
  std::ostringstream text;
  obs::render_text(report, text);
  EXPECT_NE(text.str().find("== test run =="), std::string::npos);
  EXPECT_NE(text.str().find("normalized STP"), std::string::npos);
  EXPECT_NE(text.str().find("executors_spawned"), std::string::npos);

  std::ostringstream json;
  obs::render_json(report, json);
  expect_balanced_json(json.str());
  EXPECT_NE(json.str().find("\"title\":\"test run\""), std::string::npos);
  EXPECT_NE(json.str().find("\"executor_lifetime_seconds\""), std::string::npos);
}

// ---- CLI flag parsing ----

TEST(TraceCli, StripsFlagsAndOpensSinks) {
  const std::string trace_path = ::testing::TempDir() + "/obs_cli_test.jsonl";
  std::string a0 = "prog", a1 = "L5", a2 = "--trace", a3 = trace_path, a4 = "10";
  char* argv[] = {a0.data(), a1.data(), a2.data(), a3.data(), a4.data()};
  int argc = 5;
  obs::TraceCli cli(argc, argv);
  EXPECT_TRUE(cli.active());
  EXPECT_TRUE(cli.sink().enabled());
  // Positional arguments survive, flags are gone.
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[1], "L5");
  EXPECT_STREQ(argv[2], "10");
}

TEST(TraceCli, NoFlagsMeansNullSink) {
  std::string a0 = "prog", a1 = "L5";
  char* argv[] = {a0.data(), a1.data()};
  int argc = 2;
  obs::TraceCli cli(argc, argv);
  EXPECT_FALSE(cli.active());
  EXPECT_FALSE(cli.sink().enabled());
  EXPECT_EQ(argc, 2);
}

TEST(TraceCli, MissingFileIsPreconditionError) {
  std::string a0 = "prog", a1 = "--trace";
  char* argv[] = {a0.data(), a1.data()};
  int argc = 2;
  EXPECT_THROW(obs::TraceCli(argc, argv), PreconditionError);
}

TEST(TraceCli, TraceDirMakesAFactoryAndAsyncIsStripped) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "smoe_trace_cli_dir";
  std::filesystem::remove_all(dir);
  const std::string dir_flag = "--trace-dir=" + dir.string();
  std::string a0 = "prog", a1 = "L5", a2 = dir_flag, a3 = "--trace-async";
  char* argv[] = {a0.data(), a1.data(), a2.data(), a3.data()};
  int argc = 4;
  obs::TraceCli cli(argc, argv);
  EXPECT_TRUE(cli.active());
  // --trace-dir routes through sink_factory(), not the shared sink.
  EXPECT_FALSE(cli.sink().enabled());
  ASSERT_NE(cli.sink_factory(), nullptr);
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[1], "L5");
  cli.sink_factory()->make("cell")->close();
  EXPECT_TRUE(std::filesystem::exists(dir / "cell.jsonl"));
  std::filesystem::remove_all(dir);
}

// ---- flight recorder ----

obs::Event flight_event(double t, int i) {
  return obs::Event(t, obs::EventType::kMonitorReport).with("report", i);
}

TEST(FlightRecorder, RetainsOnlyTheLastKEventsOldestFirst) {
  obs::FlightRecorder rec(4);
  EXPECT_EQ(rec.size(), 0u);
  for (int i = 0; i < 10; ++i) rec.emit(flight_event(i, i));
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.total_seen(), 10u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(events[i]->t, 6.0 + static_cast<double>(i)) << i;
    EXPECT_EQ(std::get<std::int64_t>(events[i]->find("report")->value),
              static_cast<std::int64_t>(6 + i));
  }
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.total_seen(), 10u) << "clear() forgets events, not history";
}

TEST(FlightRecorder, DumpIsByteCompatibleWithJsonlSink) {
  obs::FlightRecorder rec(8);
  std::ostringstream direct_os;
  obs::JsonlSink direct(direct_os);
  for (int i = 0; i < 5; ++i) {
    const std::string label = "payload \"" + std::to_string(i) + "\"";
    obs::Event e(0.5 * i, obs::EventType::kDispatch);
    e.with("app", i).with("ratio", 0.1 * i).with("label", label);
    rec.emit(e);
    direct.emit(e);
  }
  direct.close();
  std::ostringstream dump_os;
  rec.dump_jsonl(dump_os);
  EXPECT_EQ(dump_os.str(), direct_os.str());
}

TEST(FlightRecorder, DumpToFileFailsSoftly) {
  obs::FlightRecorder rec(2);
  rec.emit(flight_event(1, 1));
  EXPECT_FALSE(rec.dump_to_file("/nonexistent-dir/flight.jsonl"))
      << "I/O failure must report false, never throw from a failure handler";
  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "smoe_flight_dump.jsonl";
  std::filesystem::remove(path);
  EXPECT_TRUE(rec.dump_to_file(path));
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove(path);
}

}  // namespace
