// Hardened-parser regression tests: every malformed numeric a user can type
// (`--threads -1`, `--iters 1e99`, `--seconds 5s`, overflow-length digit
// strings) must be rejected — parse_* return nullopt, and the bench option
// parser exits 2 with usage instead of letting junk through or throwing.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/bench_cli.h"

namespace {

using smoe::parse_bench_options;
using smoe::parse_double;
using smoe::parse_size;

TEST(ParseSize, AcceptsPlainDigits) {
  EXPECT_EQ(parse_size("0"), 0u);
  EXPECT_EQ(parse_size("7"), 7u);
  EXPECT_EQ(parse_size("128"), 128u);
  EXPECT_EQ(parse_size("000042"), 42u);
  EXPECT_EQ(parse_size("999999999999999999"), 999999999999999999ull);  // 18 digits
}

TEST(ParseSize, RejectsSignsJunkAndOverflow) {
  EXPECT_FALSE(parse_size(""));
  EXPECT_FALSE(parse_size("-1"));
  EXPECT_FALSE(parse_size("+1"));
  EXPECT_FALSE(parse_size(" 1"));
  EXPECT_FALSE(parse_size("1 "));
  EXPECT_FALSE(parse_size("5s"));       // trailing junk
  EXPECT_FALSE(parse_size("1e99"));     // scientific notation is not an integer
  EXPECT_FALSE(parse_size("0x10"));
  EXPECT_FALSE(parse_size("1.5"));
  EXPECT_FALSE(parse_size("1234567890123456789"));  // 19 digits: over the cap
  EXPECT_FALSE(parse_size("99999999999999999999999999"));
}

TEST(ParseDouble, AcceptsDecimalAndScientific) {
  EXPECT_DOUBLE_EQ(*parse_double("0"), 0.0);
  EXPECT_DOUBLE_EQ(*parse_double("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*parse_double("1e-3"), 1e-3);
  EXPECT_DOUBLE_EQ(*parse_double("1e99"), 1e99);  // finite, so a valid *double*
  EXPECT_DOUBLE_EQ(*parse_double("0.125"), 0.125);
}

TEST(ParseDouble, RejectsSignsJunkAndNonFinite) {
  EXPECT_FALSE(parse_double(""));
  EXPECT_FALSE(parse_double("-1"));
  EXPECT_FALSE(parse_double("-0.5"));
  EXPECT_FALSE(parse_double("+1"));
  EXPECT_FALSE(parse_double("5s"));
  EXPECT_FALSE(parse_double("1.2.3"));
  EXPECT_FALSE(parse_double(" 1"));
  EXPECT_FALSE(parse_double("1 "));
  EXPECT_FALSE(parse_double("inf"));
  EXPECT_FALSE(parse_double("nan"));
  EXPECT_FALSE(parse_double("1e999"));  // overflows to inf
  EXPECT_FALSE(parse_double("0x1p4"));  // hex floats stay rejected
}

/// Builds a mutable argv for parse_bench_options.
struct Argv {
  explicit Argv(std::vector<std::string> words) : storage(std::move(words)) {
    for (std::string& w : storage) ptrs.push_back(w.data());
  }
  int argc() const { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
};

TEST(ParseBenchOptions, ParsesWellFormedArguments) {
  Argv a({"bench", "12", "--threads", "4", "--oversubscribe"});
  const auto opt = parse_bench_options(a.argc(), a.argv(), 30);
  EXPECT_EQ(opt.n_mixes, 12u);
  EXPECT_EQ(opt.threads, 4u);
  EXPECT_TRUE(opt.oversubscribe);
}

TEST(ParseBenchOptions, DefaultsApplyWithNoArguments) {
  Argv a({"bench"});
  const auto opt = parse_bench_options(a.argc(), a.argv(), 30);
  EXPECT_EQ(opt.n_mixes, 30u);
  EXPECT_EQ(opt.threads, 0u);
  EXPECT_FALSE(opt.oversubscribe);
  EXPECT_FALSE(opt.race.has_value());  // nullopt = the bench's own default
  EXPECT_EQ(opt.max_replays, 0u);
  EXPECT_DOUBLE_EQ(opt.budget_seconds, 0.0);
}

TEST(ParseBenchOptions, ParsesRacingFlags) {
  Argv a({"bench", "--race", "--max-replays", "8", "--budget-seconds", "2.5"});
  const auto opt = parse_bench_options(a.argc(), a.argv(), 30);
  ASSERT_TRUE(opt.race.has_value());
  EXPECT_TRUE(*opt.race);
  EXPECT_EQ(opt.max_replays, 8u);
  EXPECT_DOUBLE_EQ(opt.budget_seconds, 2.5);
}

TEST(ParseBenchOptions, NoRaceWinsAsAnExplicitOff) {
  Argv a({"bench", "--no-race"});
  const auto opt = parse_bench_options(a.argc(), a.argv(), 30);
  ASSERT_TRUE(opt.race.has_value());
  EXPECT_FALSE(*opt.race);
}

using ParseBenchOptionsDeath = ::testing::Test;

TEST(ParseBenchOptionsDeath, ExitsWithStatus2OnMalformedNumerics) {
  const auto run = [](std::vector<std::string> words) {
    Argv a(std::move(words));
    (void)parse_bench_options(a.argc(), a.argv(), 30);
  };
  EXPECT_EXIT(run({"bench", "--threads", "-1"}), ::testing::ExitedWithCode(2),
              "bad --threads");
  EXPECT_EXIT(run({"bench", "--threads", "1e99"}), ::testing::ExitedWithCode(2),
              "bad --threads");
  EXPECT_EXIT(run({"bench", "--threads", "5s"}), ::testing::ExitedWithCode(2),
              "bad --threads");
  EXPECT_EXIT(run({"bench", "--threads", "0"}), ::testing::ExitedWithCode(2),
              "bad --threads");
  EXPECT_EXIT(run({"bench", "--threads"}), ::testing::ExitedWithCode(2),
              "--threads needs a value");
  EXPECT_EXIT(run({"bench", "-5"}), ::testing::ExitedWithCode(2), "bad mix count");
  EXPECT_EXIT(run({"bench", "99999999999999999999"}), ::testing::ExitedWithCode(2),
              "bad mix count");
  EXPECT_EXIT(run({"bench", "10", "extra"}), ::testing::ExitedWithCode(2),
              "unexpected argument");
  EXPECT_EXIT(run({"bench", "--max-replays", "junk"}), ::testing::ExitedWithCode(2),
              "bad --max-replays");
  EXPECT_EXIT(run({"bench", "--max-replays", "1"}), ::testing::ExitedWithCode(2),
              "bad --max-replays");  // replication needs >= 2
  EXPECT_EXIT(run({"bench", "--max-replays", "-4"}), ::testing::ExitedWithCode(2),
              "bad --max-replays");
  EXPECT_EXIT(run({"bench", "--max-replays"}), ::testing::ExitedWithCode(2),
              "--max-replays needs a value");
  EXPECT_EXIT(run({"bench", "--budget-seconds", "5s"}), ::testing::ExitedWithCode(2),
              "bad --budget-seconds");
  EXPECT_EXIT(run({"bench", "--budget-seconds", "-1"}), ::testing::ExitedWithCode(2),
              "bad --budget-seconds");
  EXPECT_EXIT(run({"bench", "--budget-seconds", "inf"}), ::testing::ExitedWithCode(2),
              "bad --budget-seconds");
  EXPECT_EXIT(run({"bench", "--budget-seconds"}), ::testing::ExitedWithCode(2),
              "--budget-seconds needs a value");
}

TEST(ParseBenchOptionsDeath, HelpExitsWithStatusZeroAndUsage) {
  const auto run = [] {
    Argv a({"bench", "--help"});
    (void)parse_bench_options(a.argc(), a.argv(), 30);
  };
  EXPECT_EXIT(run(), ::testing::ExitedWithCode(0), "usage:");
}

}  // namespace
