// Numerical verification of the backpropagation gradients: a training step
// must decrease the loss in the direction the analytic gradient points, and
// repeated steps must drive simple regression problems to convergence.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ml/mlp.h"

namespace {

using namespace smoe;

double loss_of(const ml::NeuralNet& net, std::span<const double> x,
               std::span<const double> target) {
  const ml::Vector out = net.forward(x);
  double loss = 0;
  for (std::size_t i = 0; i < target.size(); ++i)
    loss += 0.5 * (out[i] - target[i]) * (out[i] - target[i]);
  return loss;
}

TEST(NeuralNet, TrainStepReportsCurrentLoss) {
  ml::NeuralNet net(2, {4}, 1, 7);
  const std::vector<double> x = {0.3, -0.8};
  const std::vector<double> t = {1.5};
  const double before = loss_of(net, x, t);
  const double reported = net.train_step(x, t, /*lr=*/0.0, /*l2=*/0.0);
  EXPECT_NEAR(reported, before, 1e-12);
}

TEST(NeuralNet, SmallStepsReduceLossMonotonically) {
  ml::NeuralNet net(3, {6, 4}, 2, 9);
  const std::vector<double> x = {0.2, -0.5, 0.9};
  const std::vector<double> t = {0.7, -0.3};
  double prev = loss_of(net, x, t);
  for (int step = 0; step < 50; ++step) {
    net.train_step(x, t, 0.05, 0.0);
    const double cur = loss_of(net, x, t);
    EXPECT_LT(cur, prev + 1e-12) << "step " << step;
    prev = cur;
  }
  EXPECT_LT(prev, 1e-2);
}

TEST(NeuralNet, GradientDirectionMatchesFiniteDifferences) {
  // The analytic step with a tiny learning rate must reduce the loss by
  // approximately lr * ||grad||^2 — a global finite-difference check of the
  // backprop implementation without exposing the weights.
  ml::NeuralNet net(2, {5}, 1, 11);
  const std::vector<double> x = {0.4, 0.6};
  const std::vector<double> t = {-0.8};
  const double before = loss_of(net, x, t);

  // Estimate ||grad||^2 from two different learning rates: for small lr,
  // delta(lr) ~ lr * g2, so delta(2*lr) / delta(lr) ~ 2.
  ml::NeuralNet net_a = net;
  ml::NeuralNet net_b = net;
  constexpr double kLr = 1e-5;
  net_a.train_step(x, t, kLr, 0.0);
  net_b.train_step(x, t, 2 * kLr, 0.0);
  const double delta_a = before - loss_of(net_a, x, t);
  const double delta_b = before - loss_of(net_b, x, t);
  ASSERT_GT(delta_a, 0.0);
  EXPECT_NEAR(delta_b / delta_a, 2.0, 0.05);
}

TEST(NeuralNet, L2DecayShrinksWeightsTowardZeroOutput) {
  ml::NeuralNet net(1, {4}, 1, 13);
  const std::vector<double> x = {1.0};
  // Train with target == current output but heavy decay: the only force is
  // L2, so the output magnitude must shrink.
  const double initial = std::abs(net.forward(x)[0]);
  for (int i = 0; i < 200; ++i) {
    const ml::Vector out = net.forward(x);
    net.train_step(x, out, 0.1, 0.05);
  }
  EXPECT_LT(std::abs(net.forward(x)[0]), initial + 1e-9);
}

TEST(AnnRegressor, FitsANoisyLine) {
  Rng rng(17);
  std::vector<ml::Vector> rows;
  std::vector<double> ys;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(-1, 1);
    rows.push_back({x});
    ys.push_back(0.6 * x + 0.2 + rng.normal(0, 0.01));
  }
  ml::AnnRegressor ann(ml::MlpParams{{8}, 300, 0.05, 1e-6}, 19);
  ann.fit(ml::Matrix::from_rows(rows), ys);
  for (const double x : {-0.8, -0.2, 0.5, 0.9}) {
    EXPECT_NEAR(ann.predict(std::vector<double>{x}), 0.6 * x + 0.2, 0.08) << x;
  }
}

TEST(AnnRegressor, FitsANonlinearCurve) {
  Rng rng(21);
  std::vector<ml::Vector> rows;
  std::vector<double> ys;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform(-1, 1);
    rows.push_back({x});
    ys.push_back(std::sin(2.0 * x));
  }
  ml::AnnRegressor ann(ml::MlpParams{{12, 8}, 500, 0.03, 1e-7}, 23);
  ann.fit(ml::Matrix::from_rows(rows), ys);
  double worst = 0;
  for (double x = -0.9; x <= 0.9; x += 0.3)
    worst = std::max(worst, std::abs(ann.predict(std::vector<double>{x}) - std::sin(2.0 * x)));
  EXPECT_LT(worst, 0.15);
}

}  // namespace
