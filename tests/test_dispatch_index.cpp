// Differential pinning of indexed dispatch (sparksim/node_index.h): for
// every scheduling policy, a run with the per-policy node index enabled must
// be indistinguishable from the legacy all-nodes scan — byte-identical JSONL
// event stream (every decision shows up there) and an identical SimResult
// down to the metrics snapshot. Covers the golden-corpus cell, a paper-scale
// 40-node cell, and randomized larger clusters, plus unit tests of the
// NodeIndex structure itself.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "obs/sink.h"
#include "sched/policies_basic.h"
#include "sched/policies_learned.h"
#include "sparksim/engine.h"
#include "sparksim/node_index.h"
#include "workloads/features.h"
#include "workloads/mixes.h"

namespace {

using namespace smoe;

constexpr std::uint64_t kSeed = 424242;

struct PolicyCell {
  std::string name;
  std::unique_ptr<sim::SchedulingPolicy> policy;
};

std::vector<PolicyCell> all_policies(const wl::FeatureModel& features) {
  std::vector<PolicyCell> cells;
  cells.push_back({"isolated", std::make_unique<sched::IsolatedPolicy>()});
  cells.push_back({"pairwise", std::make_unique<sched::PairwisePolicy>()});
  cells.push_back({"oracle", std::make_unique<sched::OraclePolicy>()});
  cells.push_back({"online", std::make_unique<sched::OnlineSearchPolicy>()});
  cells.push_back({"moe", std::make_unique<sched::MoePolicy>(features, kSeed)});
  cells.push_back({"quasar", std::make_unique<sched::QuasarPolicy>(features, kSeed)});
  return cells;
}

struct Traced {
  std::string trace;
  sim::SimResult result;
};

Traced run_traced(sim::SimConfig cfg, const wl::FeatureModel& features,
                  const wl::TaskMix& mix, sim::SchedulingPolicy& policy) {
  Traced out;
  std::ostringstream os;
  obs::JsonlSink sink(os);
  cfg.sink = &sink;
  sim::ClusterSim sim(cfg, features);
  out.result = sim.run(mix, policy);
  sink.close();
  out.trace = os.str();
  return out;
}

void expect_equal_results(const sim::SimResult& a, const sim::SimResult& b,
                          const std::string& label) {
  EXPECT_EQ(a.makespan, b.makespan) << label;
  EXPECT_EQ(a.oom_total, b.oom_total) << label;
  EXPECT_EQ(a.executors_spawned, b.executors_spawned) << label;
  EXPECT_EQ(a.executors_degraded, b.executors_degraded) << label;
  EXPECT_EQ(a.peak_node_occupancy, b.peak_node_occupancy) << label;
  EXPECT_EQ(a.reserved_gib_hours, b.reserved_gib_hours) << label;
  EXPECT_EQ(a.used_gib_hours, b.used_gib_hours) << label;
  EXPECT_TRUE(a.metrics == b.metrics) << label << ": metrics snapshots differ";
  ASSERT_EQ(a.apps.size(), b.apps.size()) << label;
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    EXPECT_EQ(a.apps[i].start, b.apps[i].start) << label << " app " << i;
    EXPECT_EQ(a.apps[i].finish, b.apps[i].finish) << label << " app " << i;
    EXPECT_EQ(a.apps[i].oom_events, b.apps[i].oom_events) << label << " app " << i;
    EXPECT_EQ(a.apps[i].executors_used, b.apps[i].executors_used) << label << " app " << i;
  }
  ASSERT_EQ(a.trace.n_bins(), b.trace.n_bins()) << label;
  for (std::size_t n = 0; n < a.trace.n_nodes(); ++n)
    for (std::size_t bin = 0; bin < a.trace.n_bins(); ++bin)
      ASSERT_EQ(a.trace.value(static_cast<int>(n), bin),
                b.trace.value(static_cast<int>(n), bin))
          << label << " node " << n << " bin " << bin;
}

void expect_index_matches_scan(sim::SimConfig cfg, const wl::FeatureModel& features,
                               const wl::TaskMix& mix, const std::string& cell_label) {
  for (auto& cell : all_policies(features)) {
    cfg.indexed_dispatch = true;
    const Traced indexed = run_traced(cfg, features, mix, *cell.policy);
    cfg.indexed_dispatch = false;
    const Traced scanned = run_traced(cfg, features, mix, *cell.policy);
    const std::string label = cell_label + "/" + cell.name;
    ASSERT_FALSE(indexed.trace.empty()) << label;
    // Byte-identical traces: any divergent placement decision surfaces here
    // with the first differing line.
    if (indexed.trace != scanned.trace) {
      std::istringstream got(indexed.trace), want(scanned.trace);
      std::string g, w;
      std::size_t line = 0;
      while (std::getline(got, g) && std::getline(want, w)) {
        ++line;
        ASSERT_EQ(g, w) << label << ": index/scan divergence at trace line " << line;
      }
      FAIL() << label << ": traces differ in length";
    }
    expect_equal_results(indexed.result, scanned.result, label);
  }
}

TEST(DispatchIndex, MatchesScanOnGoldenCorpusCell) {
  const wl::FeatureModel features(1);
  sim::SimConfig cfg;
  cfg.seed = kSeed;
  cfg.cluster.n_nodes = 6;
  const wl::TaskMix mix = {{"HB.TeraSort", 131072.0}, {"SP.Gmm", 30720.0},
                           {"SB.SVM", 30720.0},       {"BDB.Grep", 4096.0},
                           {"HB.Scan", 61440.0},      {"HB.PageRank", 30720.0}};
  expect_index_matches_scan(cfg, features, mix, "golden-6n");
}

TEST(DispatchIndex, MatchesScanAtPaperScale) {
  const wl::FeatureModel features(1);
  sim::SimConfig cfg;
  cfg.seed = kSeed;
  cfg.cluster.n_nodes = 40;  // the paper's testbed size
  Rng rng(Rng::derive(kSeed, "dispatch-index-40"));
  const wl::TaskMix mix = wl::random_mix(10, rng);
  expect_index_matches_scan(cfg, features, mix, "paper-40n");
}

TEST(DispatchIndex, MatchesScanOnRandomizedLargerClusters) {
  const wl::FeatureModel features(1);
  for (int round = 0; round < 4; ++round) {
    Rng rng(Rng::derive(kSeed, "dispatch-index-fuzz:" + std::to_string(round)));
    sim::SimConfig cfg;
    cfg.seed = Rng::derive(kSeed, "dispatch-index-sim:" + std::to_string(round));
    cfg.cluster.n_nodes = static_cast<std::size_t>(rng.uniform_int(48, 160));
    const double rams[] = {32.0, 64.0, 128.0};
    cfg.cluster.node_ram = rams[rng.uniform_int(0, 2)];
    cfg.spark.executor_boost = rng.chance(0.5) ? 2.0 : 3.0;
    if (rng.chance(0.3)) cfg.spark.queue_order = sim::QueueOrder::kShortestJobFirst;
    const wl::TaskMix mix =
        wl::random_mix(static_cast<std::size_t>(rng.uniform_int(6, 14)), rng);
    expect_index_matches_scan(cfg, features, mix,
                              "fuzz-" + std::to_string(cfg.cluster.n_nodes) + "n");
  }
}

// ---- NodeIndex unit behaviour ------------------------------------------

TEST(NodeIndex, BestHonorsFreeOrderWithLowestIdTieBreak) {
  sim::NodeIndex idx;
  idx.reset(5, 64.0, SIZE_MAX);
  // All five start at 64 GiB free; the scan's strict-> first-wins tie-break
  // means node 0 must win.
  EXPECT_EQ(idx.best(1.0, false, [](int) { return true; }), 0);
  // Shrink node 0 and 1; best flips to the lowest-id node still at 64.
  idx.touch(0, 10.0, 1);
  idx.touch(1, 20.0, 1);
  EXPECT_EQ(idx.best(1.0, false, [](int) { return true; }), 2);
  // Rejecting 2 and 3 yields 4; rejected entries must be re-pushed (ask again).
  EXPECT_EQ(idx.best(1.0, false, [](int n) { return n == 4; }), 4);
  EXPECT_EQ(idx.best(1.0, false, [](int) { return true; }), 2);
}

TEST(NodeIndex, ThresholdSemanticsStrictAndInclusive) {
  sim::NodeIndex idx;
  idx.reset(2, 8.0, SIZE_MAX);
  idx.touch(0, 4.0, 1);
  idx.touch(1, 4.0, 1);
  // Strict: 4.0 free does not clear min_free=4.0.
  EXPECT_EQ(idx.best(4.0, false, [](int) { return true; }), kNoId);
  // Inclusive: it does.
  EXPECT_EQ(idx.best(4.0, true, [](int) { return true; }), 0);
}

TEST(NodeIndex, ColocateCapHidesFullNodes) {
  sim::NodeIndex idx;
  idx.reset(3, 64.0, 2);  // pairwise: at most 2 executors per node
  idx.touch(0, 50.0, 2);  // at cap -> no entry
  idx.touch(1, 40.0, 1);
  EXPECT_EQ(idx.best(1.0, false, [](int) { return true; }), 2);  // still 64 free
  idx.touch(2, 30.0, 2);  // at cap too
  EXPECT_EQ(idx.best(1.0, false, [](int) { return true; }), 1);
}

TEST(NodeIndex, CompactionBoundsHeapFootprint) {
  sim::NodeIndex idx;
  idx.reset(8, 64.0, SIZE_MAX);
  // Churn one node hard: every touch orphans the previous entry.
  for (int i = 0; i < 4096; ++i) idx.touch(3, 64.0 - (i % 7), 1);
  EXPECT_GT(idx.heap_size(), 4000u);
  idx.compact_if_bloated();
  // One live entry per touched node + the untouched originals.
  EXPECT_LE(idx.heap_size(), 8u);
  EXPECT_EQ(idx.best(1.0, false, [](int) { return true; }), 0);  // 64.0 free, lowest id
}

TEST(NodeIndex, EmptyHeapTracksLowestEmptyNode) {
  sim::NodeIndex idx;
  idx.reset(4, 64.0, SIZE_MAX);
  std::vector<bool> empty = {true, true, true, true};
  auto valid = [&](int n) { return empty[static_cast<std::size_t>(n)]; };
  EXPECT_EQ(idx.first_empty(valid), 0);
  empty[0] = empty[1] = false;
  EXPECT_EQ(idx.first_empty(valid), 2);
  empty[1] = true;
  idx.node_emptied(1);  // re-announce
  EXPECT_EQ(idx.first_empty(valid), 1);
  empty = {false, false, false, false};
  EXPECT_EQ(idx.first_empty(valid), kNoId);
}

}  // namespace
