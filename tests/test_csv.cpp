// Tests for the CSV emitter.
#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.h"
#include "common/error.h"

namespace {

using namespace smoe;

TEST(Csv, HeaderAndRows) {
  std::ostringstream os;
  CsvWriter csv(os, {"a", "b"});
  csv.add_row({"1", "2"});
  csv.add_row({"3", "4"});
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("has,comma"), "\"has,comma\"");
  EXPECT_EQ(CsvWriter::escape("has\"quote"), "\"has\"\"quote\"");
  EXPECT_EQ(CsvWriter::escape("has\nnewline"), "\"has\nnewline\"");
}

TEST(Csv, EscapedCellsRoundThroughARow) {
  std::ostringstream os;
  CsvWriter csv(os, {"x"});
  csv.add_row({"v1,v2"});
  EXPECT_EQ(os.str(), "x\n\"v1,v2\"\n");
}

TEST(Csv, WidthMismatchRejected) {
  std::ostringstream os;
  CsvWriter csv(os, {"a", "b"});
  EXPECT_THROW(csv.add_row({"only"}), PreconditionError);
  EXPECT_THROW(CsvWriter(os, {}), PreconditionError);
}

}  // namespace
