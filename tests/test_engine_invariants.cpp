// Cross-policy engine invariants, parameterized over every scheduling policy:
// executor accounting is conserved, node occupancy respects each mode's
// rules, timing fields are consistent — and a 32-seed randomized sweep runs
// every policy under audit::InvariantAuditor, which replays the event stream
// against an independent shadow model and throws on the first violation.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "sched/policies_basic.h"
#include "sched/policies_learned.h"
#include "sparksim/audit/invariant_auditor.h"
#include "sparksim/engine.h"
#include "workloads/features.h"

namespace {

using namespace smoe;

const wl::FeatureModel& features() {
  static const wl::FeatureModel f(2017);
  return f;
}

struct PolicyCase {
  std::string name;
  std::function<std::unique_ptr<sim::SchedulingPolicy>()> make;
  std::size_t max_per_node;  // 0 = unbounded
};

std::vector<PolicyCase> policy_cases() {
  return {
      {"isolated", [] { return std::make_unique<sched::IsolatedPolicy>(); }, 1},
      {"pairwise", [] { return std::make_unique<sched::PairwisePolicy>(); }, 2},
      {"oracle", [] { return std::make_unique<sched::OraclePolicy>(); }, 0},
      {"online", [] { return std::make_unique<sched::OnlineSearchPolicy>(); }, 0},
      {"moe", [] { return std::make_unique<sched::MoePolicy>(features(), 2017); }, 0},
      {"quasar", [] { return std::make_unique<sched::QuasarPolicy>(features(), 2017); }, 0},
  };
}

class EveryPolicy : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(EveryPolicy, ExecutorAccountingConserved) {
  sim::SimConfig cfg;
  cfg.seed = 31;
  sim::ClusterSim sim(cfg, features());
  auto policy = GetParam().make();
  Rng rng(32);
  const auto mix = wl::random_mix(7, rng);
  const sim::SimResult r = sim.run(mix, *policy);
  std::size_t per_app_total = 0;
  for (const auto& app : r.apps) {
    EXPECT_GE(app.executors_used, 1u) << app.benchmark;
    per_app_total += app.executors_used;
  }
  EXPECT_EQ(per_app_total, r.executors_spawned);
}

TEST_P(EveryPolicy, NodeOccupancyRespectsMode) {
  const std::size_t cap = GetParam().max_per_node;
  if (cap == 0) GTEST_SKIP() << "unbounded mode";
  sim::SimConfig cfg;
  cfg.seed = 33;
  sim::ClusterSim sim(cfg, features());
  auto policy = GetParam().make();
  const sim::SimResult r = sim.run(wl::table4_mix(), *policy);
  EXPECT_LE(r.peak_node_occupancy, cap);
}

TEST_P(EveryPolicy, TimingFieldsConsistent) {
  sim::SimConfig cfg;
  cfg.seed = 34;
  sim::ClusterSim sim(cfg, features());
  auto policy = GetParam().make();
  Rng rng(35);
  const auto mix = wl::random_mix(5, rng);
  const sim::SimResult r = sim.run(mix, *policy);
  for (const auto& app : r.apps) {
    EXPECT_GE(app.start, app.profile_end - 1e-6) << app.benchmark;
    EXPECT_GE(app.finish, app.start) << app.benchmark;
    EXPECT_GE(app.turnaround(), app.exec_time() - 1e-6) << app.benchmark;
    EXPECT_LE(app.finish, r.makespan + 1e-6) << app.benchmark;
  }
}

TEST_P(EveryPolicy, MemoryAccountingNonNegativeAndOrdered) {
  sim::SimConfig cfg;
  cfg.seed = 36;
  sim::ClusterSim sim(cfg, features());
  auto policy = GetParam().make();
  Rng rng(37);
  const auto mix = wl::random_mix(6, rng);
  const sim::SimResult r = sim.run(mix, *policy);
  EXPECT_GE(r.reserved_gib_hours, 0.0);
  EXPECT_GT(r.used_gib_hours, 0.0);
  // Residency is capped by reservation per executor, so the integrals order.
  EXPECT_GE(r.reserved_gib_hours, r.used_gib_hours - 1e-6);
}

// 32 random seeds per policy, each run replayed live through the invariant
// auditor's shadow model (see src/sparksim/audit). The policy is constructed
// once and reused across seeds — the same reuse the experiment runner does.
// For the first seeds the run is repeated without any sink attached and must
// produce the identical SimResult: auditing is a passive observer, and a
// detached auditor costs exactly nothing.
TEST_P(EveryPolicy, RandomSeedSweepUnderAudit) {
  auto policy = GetParam().make();
  sim::audit::InvariantAuditor auditor;
  constexpr std::uint64_t kSeeds = 32;
  constexpr std::uint64_t kCrossChecked = 4;  // also re-run un-audited
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Rng rng(Rng::derive(seed, "invariant-sweep"));
    const auto mix = wl::random_mix(2 + seed % 5, rng);
    sim::SimConfig cfg;
    cfg.seed = seed;
    cfg.sink = &auditor;
    sim::ClusterSim sim(cfg, features());
    sim::SimResult audited;
    ASSERT_NO_THROW(audited = sim.run(mix, *policy))
        << GetParam().name << " seed " << seed;
    if (seed > kCrossChecked) continue;
    sim::SimConfig bare_cfg = cfg;
    bare_cfg.sink = nullptr;
    sim::ClusterSim bare(bare_cfg, features());
    const sim::SimResult detached = bare.run(mix, *policy);
    EXPECT_EQ(detached.makespan, audited.makespan) << GetParam().name << " seed " << seed;
    EXPECT_EQ(detached.oom_total, audited.oom_total);
    EXPECT_EQ(detached.executors_spawned, audited.executors_spawned);
    EXPECT_EQ(detached.reserved_gib_hours, audited.reserved_gib_hours);
    EXPECT_EQ(detached.metrics, audited.metrics);
  }
  EXPECT_EQ(auditor.runs_completed(), kSeeds);
}

INSTANTIATE_TEST_SUITE_P(Policies, EveryPolicy, ::testing::ValuesIn(policy_cases()),
                         [](const ::testing::TestParamInfo<PolicyCase>& info) {
                           return info.param.name;
                         });

// ---- dispatch tie-breaking regression ----

/// Predicts a twentieth of the measured footprint, so the first predictive
/// executor overshoots its heap far past the OOM tolerance, dies, and flips
/// the application into the distrusted default-heap fallback.
class UnderPredictingPolicy final : public sim::SchedulingPolicy {
 public:
  std::string name() const override { return "under-predict"; }
  sim::DispatchMode mode() const override { return sim::DispatchMode::kPredictive; }
  sim::ProfilingCost profile(sim::AppProbe& probe, sim::MemoryEstimate& est) override {
    const double per_item = probe.measure_footprint(8192.0) / 8192.0;
    est.footprint = [per_item](Items items) { return 0.05 * per_item * items; };
    // Small fixed chunks keep work unassigned after the OOM wave, so the run
    // actually reaches the distrusted fallback this test pins down.
    est.items_for_budget = [](GiB) { return 8192.0; };
    est.cpu_load = 0.3;
    return {};
  }
};

/// Regression for the distrusted-fallback tie-break: with several equally
/// free nodes the fallback must pick the *first* (strict `>`, matching the
/// predictive loop) — the old `>=` comparison drifted to the last node.
TEST(DispatchTieBreak, DistrustedFallbackPicksFirstFreeNodeOnTies) {
  // Events are retained past emit(), so they must be deep-copied: the
  // Event's own string fields are views that die with the emitting call.
  struct NodeRecorder final : obs::EventSink {
    std::vector<obs::OwnedEvent> events;
    void emit(const obs::Event& event) override { events.emplace_back(event); }
  };
  NodeRecorder rec;
  sim::SimConfig cfg;
  cfg.seed = 5;
  cfg.cluster.n_nodes = 4;
  cfg.sink = &rec;
  sim::ClusterSim sim(cfg, features());
  UnderPredictingPolicy policy;
  const sim::SimResult r = sim.run({{"HB.TeraSort", 262144.0}}, policy);
  ASSERT_GE(r.oom_total, 1u) << "under-prediction no longer triggers an OOM";

  // First non-rerun dispatch after the first OOM is the distrusted fallback
  // choosing among all-idle (equally free) nodes: must be node 0.
  bool seen_oom = false;
  std::int64_t fallback_node = -1;
  for (const obs::OwnedEvent& e : rec.events) {
    if (e.type == obs::EventType::kExecutorOom) seen_oom = true;
    if (!seen_oom || e.type != obs::EventType::kDispatch) continue;
    const auto rerun = std::get<std::int64_t>(e.find("isolated_rerun")->value);
    const auto predictive = std::get<std::int64_t>(e.find("predictive")->value);
    if (rerun == 0 && predictive == 0) {
      fallback_node = std::get<std::int64_t>(e.find("node")->value);
      break;
    }
  }
  ASSERT_NE(fallback_node, -1) << "run never reached the distrusted fallback";
  EXPECT_EQ(fallback_node, 0);
}

}  // namespace
