// Cross-policy engine invariants, parameterized over every scheduling policy:
// executor accounting is conserved, node occupancy respects each mode's
// rules, and timing fields are consistent.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "sched/policies_basic.h"
#include "sched/policies_learned.h"
#include "sparksim/engine.h"
#include "workloads/features.h"

namespace {

using namespace smoe;

const wl::FeatureModel& features() {
  static const wl::FeatureModel f(2017);
  return f;
}

struct PolicyCase {
  std::string name;
  std::function<std::unique_ptr<sim::SchedulingPolicy>()> make;
  std::size_t max_per_node;  // 0 = unbounded
};

std::vector<PolicyCase> policy_cases() {
  return {
      {"isolated", [] { return std::make_unique<sched::IsolatedPolicy>(); }, 1},
      {"pairwise", [] { return std::make_unique<sched::PairwisePolicy>(); }, 2},
      {"oracle", [] { return std::make_unique<sched::OraclePolicy>(); }, 0},
      {"online", [] { return std::make_unique<sched::OnlineSearchPolicy>(); }, 0},
      {"moe", [] { return std::make_unique<sched::MoePolicy>(features(), 2017); }, 0},
      {"quasar", [] { return std::make_unique<sched::QuasarPolicy>(features(), 2017); }, 0},
  };
}

class EveryPolicy : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(EveryPolicy, ExecutorAccountingConserved) {
  sim::SimConfig cfg;
  cfg.seed = 31;
  sim::ClusterSim sim(cfg, features());
  auto policy = GetParam().make();
  Rng rng(32);
  const auto mix = wl::random_mix(7, rng);
  const sim::SimResult r = sim.run(mix, *policy);
  std::size_t per_app_total = 0;
  for (const auto& app : r.apps) {
    EXPECT_GE(app.executors_used, 1u) << app.benchmark;
    per_app_total += app.executors_used;
  }
  EXPECT_EQ(per_app_total, r.executors_spawned);
}

TEST_P(EveryPolicy, NodeOccupancyRespectsMode) {
  const std::size_t cap = GetParam().max_per_node;
  if (cap == 0) GTEST_SKIP() << "unbounded mode";
  sim::SimConfig cfg;
  cfg.seed = 33;
  sim::ClusterSim sim(cfg, features());
  auto policy = GetParam().make();
  const sim::SimResult r = sim.run(wl::table4_mix(), *policy);
  EXPECT_LE(r.peak_node_occupancy, cap);
}

TEST_P(EveryPolicy, TimingFieldsConsistent) {
  sim::SimConfig cfg;
  cfg.seed = 34;
  sim::ClusterSim sim(cfg, features());
  auto policy = GetParam().make();
  Rng rng(35);
  const auto mix = wl::random_mix(5, rng);
  const sim::SimResult r = sim.run(mix, *policy);
  for (const auto& app : r.apps) {
    EXPECT_GE(app.start, app.profile_end - 1e-6) << app.benchmark;
    EXPECT_GE(app.finish, app.start) << app.benchmark;
    EXPECT_GE(app.turnaround(), app.exec_time() - 1e-6) << app.benchmark;
    EXPECT_LE(app.finish, r.makespan + 1e-6) << app.benchmark;
  }
}

TEST_P(EveryPolicy, MemoryAccountingNonNegativeAndOrdered) {
  sim::SimConfig cfg;
  cfg.seed = 36;
  sim::ClusterSim sim(cfg, features());
  auto policy = GetParam().make();
  Rng rng(37);
  const auto mix = wl::random_mix(6, rng);
  const sim::SimResult r = sim.run(mix, *policy);
  EXPECT_GE(r.reserved_gib_hours, 0.0);
  EXPECT_GT(r.used_gib_hours, 0.0);
  // Residency is capped by reservation per executor, so the integrals order.
  EXPECT_GE(r.reserved_gib_hours, r.used_gib_hours - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Policies, EveryPolicy, ::testing::ValuesIn(policy_cases()),
                         [](const ::testing::TestParamInfo<PolicyCase>& info) {
                           return info.param.name;
                         });

}  // namespace
