// Tests for the dispatcher queue discipline (Section 5.2: the co-location
// technique applies to any scheduling policy, FCFS being the evaluated one).
#include <gtest/gtest.h>

#include "sched/metrics.h"
#include "sched/policies_basic.h"
#include "sparksim/engine.h"
#include "workloads/features.h"

namespace {

using namespace smoe;

wl::TaskMix big_then_small() {
  return {{"HB.TeraSort", 1048576.0},  // large job submitted first
          {"HB.Scan", 300.0},          // tiny jobs stuck behind it under FCFS
          {"BDB.Grep", 300.0}};
}

TEST(QueueOrder, FcfsRunsInSubmissionOrderWhenIsolated) {
  const wl::FeatureModel features(1);
  sim::SimConfig cfg;
  cfg.seed = 3;
  sim::ClusterSim sim(cfg, features);
  sched::IsolatedPolicy isolated;
  const sim::SimResult r = sim.run(big_then_small(), isolated);
  EXPECT_LT(r.apps[0].finish, r.apps[1].finish);
  EXPECT_LT(r.apps[1].finish, r.apps[2].finish);
}

TEST(QueueOrder, ShortestJobFirstReordersIsolatedExecution) {
  const wl::FeatureModel features(1);
  sim::SimConfig cfg;
  cfg.seed = 3;
  cfg.spark.queue_order = sim::QueueOrder::kShortestJobFirst;
  sim::ClusterSim sim(cfg, features);
  sched::IsolatedPolicy isolated;
  const sim::SimResult r = sim.run(big_then_small(), isolated);
  // The tiny jobs finish before the 1 TB job even though it was first.
  EXPECT_LT(r.apps[1].finish, r.apps[0].finish);
  EXPECT_LT(r.apps[2].finish, r.apps[0].finish);
}

TEST(QueueOrder, SjfImprovesAnttOnSkewedIsolatedMix) {
  const wl::FeatureModel features(1);
  sim::SimConfig fcfs_cfg;
  fcfs_cfg.seed = 3;
  sim::SimConfig sjf_cfg = fcfs_cfg;
  sjf_cfg.spark.queue_order = sim::QueueOrder::kShortestJobFirst;

  sched::IsolatedPolicy isolated;
  sim::ClusterSim fcfs(fcfs_cfg, features);
  sim::ClusterSim sjf(sjf_cfg, features);
  sched::IsolatedTimes iso(fcfs);

  const auto mix = big_then_small();
  const double antt_fcfs = sched::compute_metrics(fcfs.run(mix, isolated), iso).antt;
  const double antt_sjf = sched::compute_metrics(sjf.run(mix, isolated), iso).antt;
  EXPECT_LT(antt_sjf, antt_fcfs);  // the classic SJF result
}

TEST(QueueOrder, SjfKeepsWorkConservedUnderCoLocation) {
  const wl::FeatureModel features(1);
  sim::SimConfig cfg;
  cfg.seed = 4;
  cfg.spark.queue_order = sim::QueueOrder::kShortestJobFirst;
  sim::ClusterSim sim(cfg, features);
  sched::OraclePolicy oracle;
  const sim::SimResult r = sim.run(wl::table4_mix(), oracle);
  ASSERT_EQ(r.apps.size(), 30u);
  for (const auto& app : r.apps) EXPECT_GE(app.finish, 0.0) << app.benchmark;
}

TEST(QueueOrder, StableForEqualSizes) {
  // Equal-size jobs keep submission order under SJF (stable sort).
  const wl::FeatureModel features(1);
  sim::SimConfig cfg;
  cfg.seed = 5;
  cfg.spark.queue_order = sim::QueueOrder::kShortestJobFirst;
  sim::ClusterSim sim(cfg, features);
  sched::IsolatedPolicy isolated;
  const wl::TaskMix mix = {{"HB.Scan", 30720.0}, {"BDB.Grep", 30720.0}};
  const sim::SimResult r = sim.run(mix, isolated);
  EXPECT_LT(r.apps[0].finish, r.apps[1].finish);
}

}  // namespace
