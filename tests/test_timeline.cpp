// Timeline analyzer tests: live (engine-attached sink) and replay (parsed
// trace) modes produce identical results; derived series obey conservation
// invariants on the golden corpus; StepSeries/quantile math is exact on hand
// computations; RunComparator diffs are consistent and deterministic.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/analysis/comparator.h"
#include "obs/analysis/timeline.h"
#include "obs/analysis/trace_reader.h"
#include "obs/sink.h"
#include "sched/policies_basic.h"
#include "sched/policies_learned.h"
#include "sparksim/engine.h"
#include "workloads/features.h"
#include "workloads/mixes.h"

#ifndef SMOE_GOLDEN_DIR
#error "SMOE_GOLDEN_DIR must point at tests/golden"
#endif

namespace {

using namespace smoe;
using namespace smoe::obs;

constexpr std::uint64_t kSeed = 424242;

wl::TaskMix golden_mix() {
  return {{"HB.TeraSort", 131072.0}, {"SP.Gmm", 30720.0},  {"SB.SVM", 30720.0},
          {"BDB.Grep", 4096.0},      {"HB.Scan", 61440.0}, {"HB.PageRank", 30720.0}};
}

TimelineResult analyze_golden(const std::string& policy) {
  const std::string path = std::string(SMOE_GOLDEN_DIR) + "/trace_" + policy + ".jsonl";
  return Timeline::analyze(TraceReader::read_file(path));
}

// ---- StepSeries ----

TEST(StepSeries, RecordCollapsesRepeatsAndSameInstant) {
  StepSeries s;
  s.record(0, 1);
  s.record(1, 1);  // unchanged value: no new point
  EXPECT_EQ(s.points.size(), 1u);
  s.record(2, 3);
  s.record(2, 5);  // same instant: last value wins
  ASSERT_EQ(s.points.size(), 2u);
  EXPECT_EQ(s.points[1].v, 5);
  s.record(3, 7);
  s.record(3, 5);  // same instant back to prior value: point vanishes
  ASSERT_EQ(s.points.size(), 2u);
  EXPECT_EQ(s.last(), 5);
  EXPECT_EQ(s.peak(), 5);
}

TEST(StepSeries, TimeWeightedMeanIsTheStepIntegral) {
  StepSeries s;
  s.record(0, 2);   // 2 for t in [0,4)
  s.record(4, 6);   // 6 for t in [4,10)
  EXPECT_DOUBLE_EQ(s.time_weighted_mean(10), (2 * 4 + 6 * 6) / 10.0);
  // Series starting after 0: implicit 0 before the first point.
  StepSeries late;
  late.record(5, 4);
  EXPECT_DOUBLE_EQ(late.time_weighted_mean(10), 2.0);
  EXPECT_DOUBLE_EQ(StepSeries{}.time_weighted_mean(10), 0.0);
}

TEST(TimelineResult, SojournQuantileInterpolates) {
  TimelineResult r;
  for (double v : {10.0, 20.0, 30.0, 40.0}) {
    AppRecord a;
    a.app = static_cast<std::int64_t>(v);
    a.finished = true;
    a.turnaround = v;
    r.apps.push_back(a);
  }
  EXPECT_DOUBLE_EQ(r.sojourn_quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(r.sojourn_quantile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(r.sojourn_quantile(0.5), 25.0);
  EXPECT_DOUBLE_EQ(r.sojourn_quantile(1.0 / 3.0), 20.0);
}

// ---- live == replay ----

TEST(Timeline, LiveAndReplayResultsAreIdentical) {
  struct Case {
    std::string name;
    std::unique_ptr<sim::SchedulingPolicy> policy;
  };
  const wl::FeatureModel features(1);
  std::vector<Case> cases;
  cases.push_back({"isolated", std::make_unique<sched::IsolatedPolicy>()});
  cases.push_back({"moe", std::make_unique<sched::MoePolicy>(features, kSeed)});
  for (auto& c : cases) {
    std::ostringstream os;
    JsonlSink jsonl(os);
    Timeline live;
    TeeSink tee(jsonl, live);
    sim::SimConfig cfg;
    cfg.seed = kSeed;
    cfg.cluster.n_nodes = 6;
    cfg.sink = &tee;
    sim::ClusterSim sim(cfg, features);
    (void)sim.run(golden_mix(), *c.policy);
    jsonl.close();

    std::istringstream in(os.str());
    const TimelineResult replayed = Timeline::analyze(TraceReader::read_all(in));
    EXPECT_EQ(live.result(), replayed) << c.name;
  }
}

// ---- golden corpus invariants ----

const std::vector<std::string>& golden_policies() {
  static const std::vector<std::string> p = {"isolated", "pairwise", "oracle",
                                             "online",   "moe",      "quasar"};
  return p;
}

TEST(Timeline, GoldenCorpusConservationInvariants) {
  for (const std::string& policy : golden_policies()) {
    const TimelineResult r = analyze_golden(policy);
    SCOPED_TRACE(policy);
    ASSERT_TRUE(r.run.ended);
    EXPECT_GT(r.run.makespan, 0);
    EXPECT_EQ(r.run.n_apps, static_cast<std::int64_t>(r.apps.size()));
    EXPECT_EQ(static_cast<std::size_t>(r.run.n_nodes), r.nodes.size());

    // The run drained: nothing live, nothing queued, nothing in-system.
    EXPECT_EQ(r.live_executors.last(), 0);
    EXPECT_EQ(r.queue_depth.last(), 0);
    EXPECT_EQ(r.apps_in_system.last(), 0);

    std::int64_t execs = 0, ooms = 0;
    for (const AppRecord& a : r.apps) {
      EXPECT_TRUE(a.finished) << "app " << a.app;
      EXPECT_FALSE(a.benchmark.empty());
      EXPECT_GE(a.queue_wait, -1e-9) << "app " << a.app;
      EXPECT_GE(a.first_dispatch_t, 0) << "app " << a.app;
      EXPECT_NEAR(a.turnaround, a.finish_t - a.submit_t, 1e-9) << "app " << a.app;
      EXPECT_GT(a.exec_time, 0) << "app " << a.app;
      execs += a.executors;
      ooms += a.ooms;
      if (a.ooms > 0) {
        EXPECT_GT(a.lost_items, 0) << "app " << a.app;
        EXPECT_GT(a.rerun_executors, 0) << "app " << a.app;
        EXPECT_GT(a.rerun_time, 0) << "app " << a.app;
      }
    }
    EXPECT_EQ(execs, r.run.executors_spawned);
    EXPECT_EQ(ooms, r.run.oom_total);

    double max_occupancy = 0;
    for (std::size_t n = 0; n < r.nodes.size(); ++n) {
      const NodeSeries& node = r.nodes[n];
      // Executors end with their node share released (up to float dust the
      // engine itself leaves behind).
      EXPECT_NEAR(node.reserved_gib.last(), 0, 1e-9) << "node " << n;
      EXPECT_EQ(node.occupancy.last(), 0) << "node " << n;
      EXPECT_LE(node.reserved_gib.peak(), r.run.node_ram_gib + 1e-9) << "node " << n;
      EXPECT_LE(node.utilization.peak(), 1.0 + 1e-9) << "node " << n;
      max_occupancy = std::max(max_occupancy, node.occupancy.peak());
    }
    EXPECT_EQ(static_cast<std::int64_t>(max_occupancy), r.run.peak_node_occupancy);

    // makespan is the last app finish.
    double last_finish = 0;
    for (const AppRecord& a : r.apps) last_finish = std::max(last_finish, a.finish_t);
    EXPECT_DOUBLE_EQ(last_finish, r.run.makespan);
  }
}

TEST(Timeline, GoldenOomTracesAttributeLostWork) {
  bool saw_oom = false;
  for (const std::string& policy : golden_policies()) {
    const TimelineResult r = analyze_golden(policy);
    if (r.run.oom_total == 0) continue;
    saw_oom = true;
    double lost = 0;
    std::int64_t reruns = 0;
    for (const AppRecord& a : r.apps) {
      lost += a.lost_items;
      reruns += a.rerun_executors;
    }
    EXPECT_GT(lost, 0) << policy;
    EXPECT_GE(reruns, r.run.oom_total) << policy;
  }
  ASSERT_TRUE(saw_oom) << "golden corpus lost its OOM coverage — pick a mix "
                          "that still exercises executor_oom";
}

// ---- comparator ----

TEST(Comparator, SelfDiffIsAllZeros) {
  const TimelineResult r = analyze_golden("moe");
  const RunDiff d = compare_runs(r, r);
  ASSERT_FALSE(d.metrics.empty());
  for (const RunDiff::MetricRow& m : d.metrics) {
    EXPECT_EQ(m.delta(), 0) << m.name;
    EXPECT_EQ(m.pct(), 0) << m.name;
  }
  for (const RunDiff::AppRow& a : d.apps) {
    EXPECT_TRUE(a.in_a && a.in_b);
    EXPECT_EQ(a.turnaround_a, a.turnaround_b);
  }
}

TEST(Comparator, DiffMatchesTimelineMetrics) {
  const TimelineResult a = analyze_golden("isolated");
  const TimelineResult b = analyze_golden("moe");
  const RunDiff d = compare_runs(a, b);
  ASSERT_FALSE(d.metrics.empty());
  EXPECT_EQ(d.label_a, a.run.policy);
  EXPECT_EQ(d.label_b, b.run.policy);
  EXPECT_EQ(d.metrics[0].name, "makespan_s");
  EXPECT_DOUBLE_EQ(d.metrics[0].a, a.run.makespan);
  EXPECT_DOUBLE_EQ(d.metrics[0].b, b.run.makespan);
  EXPECT_EQ(d.apps.size(), a.apps.size());

  const std::string text = render_text(d);
  EXPECT_NE(text.find("makespan_s"), std::string::npos);
  EXPECT_NE(text.find(a.run.policy), std::string::npos);
  EXPECT_EQ(text, render_text(compare_runs(a, b))) << "render must be deterministic";
}

TEST(Comparator, FormatNumberIsShortestRoundTrip) {
  EXPECT_EQ(format_number(5.0), "5");
  EXPECT_EQ(format_number(0.5), "0.5");
  EXPECT_EQ(format_number(-0.0), "-0");
  EXPECT_EQ(format_number(std::nan("")), "nan");
}

}  // namespace
