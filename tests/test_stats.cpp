// Unit and property tests for common/stats.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"

namespace {

using namespace smoe;

TEST(Stats, MeanAndVariance) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(variance(xs), 2.5);
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(2.5));
}

TEST(Stats, MeanOfSingleElement) {
  const std::vector<double> xs = {42.0};
  EXPECT_DOUBLE_EQ(mean(xs), 42.0);
}

TEST(Stats, EmptyInputsThrow) {
  const std::vector<double> empty;
  EXPECT_THROW(mean(empty), PreconditionError);
  EXPECT_THROW(geomean(empty), PreconditionError);
  EXPECT_THROW(min_of(empty), PreconditionError);
  EXPECT_THROW(percentile(empty, 50), PreconditionError);
}

TEST(Stats, VarianceNeedsTwoSamples) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(variance(xs), PreconditionError);
}

TEST(Stats, Geomean) {
  const std::vector<double> xs = {1, 10, 100};
  EXPECT_NEAR(geomean(xs), 10.0, 1e-12);
}

TEST(Stats, GeomeanRejectsNonPositive) {
  const std::vector<double> xs = {1.0, 0.0};
  EXPECT_THROW(geomean(xs), PreconditionError);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs = {3, -1, 7, 2};
  EXPECT_DOUBLE_EQ(min_of(xs), -1);
  EXPECT_DOUBLE_EQ(max_of(xs), 7);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(median(xs), 25);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25);
}

TEST(Stats, PercentileOutOfRangeThrows) {
  const std::vector<double> xs = {1, 2};
  EXPECT_THROW(percentile(xs, -1), PreconditionError);
  EXPECT_THROW(percentile(xs, 101), PreconditionError);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> neg = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero) {
  const std::vector<double> xs = {1, 2, 3};
  const std::vector<double> ys = {5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, RSquaredPerfectAndBaseline) {
  const std::vector<double> obs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(r_squared(obs, obs), 1.0);
  const std::vector<double> pred_mean = {2.5, 2.5, 2.5, 2.5};
  EXPECT_NEAR(r_squared(obs, pred_mean), 0.0, 1e-12);
}

TEST(Stats, CiHalfWidthShrinksWithSamples) {
  Rng rng(1);
  std::vector<double> small, large;
  for (int i = 0; i < 10; ++i) small.push_back(rng.normal(10, 2));
  for (int i = 0; i < 1000; ++i) large.push_back(rng.normal(10, 2));
  EXPECT_GT(ci_half_width(small), ci_half_width(large));
  EXPECT_GT(ci_half_width(large, 0.99), ci_half_width(large, 0.95));
}

TEST(Stats, CiHalfWidthOfSingletonIsZero) {
  const std::vector<double> xs = {1.0};
  EXPECT_DOUBLE_EQ(ci_half_width(xs), 0.0);
}

TEST(Welford, MatchesTwoPassOnRandomData) {
  Rng rng(99);
  std::vector<double> xs;
  Welford w;
  for (int i = 0; i < 257; ++i) {
    const double x = rng.normal(3.0, 2.5);
    xs.push_back(x);
    w.add(x);
  }
  EXPECT_EQ(w.count(), xs.size());
  EXPECT_NEAR(w.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(w.variance(), variance(xs), 1e-9);
  EXPECT_NEAR(w.stddev(), stddev(xs), 1e-9);
  EXPECT_NEAR(w.ci_half_width(), ci_half_width(xs), 1e-9);
  EXPECT_NEAR(w.ci_half_width(0.99), ci_half_width(xs, 0.99), 1e-9);
}

TEST(Welford, EmptyAndSingletonContracts) {
  Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_THROW(w.mean(), PreconditionError);
  EXPECT_DOUBLE_EQ(w.ci_half_width(), 0.0);  // like ci_half_width(span)
  w.add(4.0);
  EXPECT_DOUBLE_EQ(w.mean(), 4.0);
  EXPECT_THROW(w.variance(), PreconditionError);
  EXPECT_DOUBLE_EQ(w.ci_half_width(), 0.0);
}

TEST(Welford, ConstantSeriesHasZeroVariance) {
  // The catastrophic-cancellation case the one-pass recurrence must survive:
  // identical large values must give exactly zero variance, not a negative
  // residue turned NaN by sqrt.
  Welford w;
  for (int i = 0; i < 10; ++i) w.add(1.0e12 + 0.25);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.stddev(), 0.0);
}

TEST(TCritical, MatchesStandardTables) {
  EXPECT_NEAR(t_critical(1, 0.95), 12.7062, 1e-3);
  EXPECT_NEAR(t_critical(2, 0.95), 4.3027, 1e-3);
  EXPECT_NEAR(t_critical(4, 0.95), 2.7764, 1e-3);
  EXPECT_NEAR(t_critical(9, 0.95), 2.2622, 1e-3);
  EXPECT_NEAR(t_critical(29, 0.95), 2.0452, 1e-3);
  EXPECT_NEAR(t_critical(1, 0.99), 63.6567, 1e-3);
  EXPECT_NEAR(t_critical(9, 0.90), 1.8331, 1e-3);
}

TEST(TCritical, DominatesNormalAndConvergesToIt) {
  for (std::size_t dof = 1; dof < 30; ++dof) {
    EXPECT_GT(t_critical(dof, 0.95), normal_critical(0.95)) << "dof " << dof;
    if (dof > 1) EXPECT_LT(t_critical(dof, 0.95), t_critical(dof - 1, 0.95)) << "dof " << dof;
  }
  EXPECT_DOUBLE_EQ(t_critical(30, 0.95), normal_critical(0.95));
  EXPECT_DOUBLE_EQ(t_critical(1000, 0.99), normal_critical(0.99));
}

TEST(TCritical, RejectsBadArguments) {
  EXPECT_THROW(t_critical(0, 0.95), PreconditionError);
  EXPECT_THROW(t_critical(5, 0.0), PreconditionError);
  EXPECT_THROW(t_critical(5, 1.0), PreconditionError);
}

TEST(Welford, TBoundsAreWiderThanNormalAtSmallN) {
  // The reason the racing path uses Student-t: at 3 replays the normal
  // interval is ~2.2x too narrow, which would eliminate arms prematurely.
  Welford w;
  w.add(1.0);
  w.add(2.0);
  w.add(4.0);
  EXPECT_GT(w.ci_half_width(0.95, true), 2.0 * w.ci_half_width(0.95, false));
}

TEST(Stats, ViolinSummaryOrdering) {
  Rng rng(2);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.lognormal_median(5.0, 0.5));
  const ViolinSummary v = violin_summary(xs);
  EXPECT_LE(v.min, v.p25);
  EXPECT_LE(v.p25, v.median);
  EXPECT_LE(v.median, v.p75);
  EXPECT_LE(v.p75, v.max);
  EXPECT_NEAR(v.median, 5.0, 0.5);   // lognormal median
  EXPECT_GT(v.mean, v.median - 0.2); // right-skewed
}

TEST(Stats, HistogramCountsAndClamping) {
  const std::vector<double> xs = {-5, 0.5, 1.5, 2.5, 99};
  const Histogram h = histogram(xs, 0, 3, 3);
  ASSERT_EQ(h.counts.size(), 3u);
  EXPECT_EQ(h.counts[0], 2u);  // -5 clamps into the first bucket
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts[2], 2u);  // 99 clamps into the last bucket
}

TEST(Stats, HistogramBadBoundsThrow) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(histogram(xs, 3, 0, 3), PreconditionError);
  EXPECT_THROW(histogram(xs, 0, 3, 0), PreconditionError);
}

// Property sweep: percentile is monotone in p for random data.
class PercentileMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PercentileMonotone, MonotoneInP) {
  Rng rng(GetParam());
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(rng.uniform(-50, 50));
  double prev = percentile(xs, 0);
  for (double p = 5; p <= 100; p += 5) {
    const double cur = percentile(xs, p);
    EXPECT_GE(cur, prev) << "p=" << p;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotone, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
