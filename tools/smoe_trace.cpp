// smoe-trace: offline analytics over JSONL simulator traces.
//
//   smoe-trace summarize FILE... [--threads N]   headline metrics per trace
//   smoe-trace diff A B                          A/B metric + per-app table
//   smoe-trace timeline FILE --csv [--series S]  derived step series as CSV
//   smoe-trace apps FILE [--top N]               per-app lifecycle table
//   smoe-trace bench FILE [--repeat N]           parse/analyze throughput
//
// Every subcommand except `bench` is byte-deterministic: output depends only
// on the input bytes (scripts/check.sh runs summarize/diff twice and across
// --threads values and fails on any drift). With --threads N, files are
// parsed and analyzed in parallel but results print in argument order.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/bench_cli.h"
#include "common/thread_pool.h"
#include "obs/analysis/comparator.h"
#include "obs/analysis/timeline.h"
#include "obs/analysis/trace_reader.h"

namespace {

using namespace smoe;
using namespace smoe::obs;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " <summarize|diff|timeline|apps|bench> ...\n"
            << "  summarize FILE... [--threads N]\n"
            << "  diff A B\n"
            << "  timeline FILE [--csv] [--series SUBSTR]\n"
            << "  apps FILE [--top N]\n"
            << "  bench FILE [--repeat N]\n";
  return 2;
}

std::string fmt(double v) { return format_number(v); }

std::string render_summary(const std::string& label, const TimelineResult& r) {
  std::int64_t finished = 0;
  double lost = 0, rerun_t = 0;
  std::int64_t reruns = 0, thrashes = 0, spills = 0;
  double wait_sum = 0;
  std::int64_t wait_n = 0;
  for (const AppRecord& a : r.apps) {
    if (a.finished) ++finished;
    lost += a.lost_items;
    rerun_t += a.rerun_time;
    reruns += a.rerun_executors;
    thrashes += a.thrashes;
    spills += a.spills;
    if (a.first_dispatch_t >= 0) {
      wait_sum += a.queue_wait;
      ++wait_n;
    }
  }
  const double t_end = r.end_time();
  double util_sum = 0, peak_res = 0;
  for (const NodeSeries& n : r.nodes) {
    util_sum += n.utilization.time_weighted_mean(t_end);
    peak_res = std::max(peak_res, n.reserved_gib.peak());
  }
  const double util =
      r.nodes.empty() ? 0 : util_sum / static_cast<double>(r.nodes.size());

  std::string out;
  out += "== " + label + "\n";
  out += "run: policy \"" + r.run.policy + "\", mode " + r.run.mode + ", " +
         std::to_string(r.run.n_apps) + " apps, " + std::to_string(r.run.n_nodes) +
         " nodes, " + fmt(r.run.node_ram_gib) + " GiB/node, seed " +
         std::to_string(r.run.seed) + "\n";
  out += "events: " + std::to_string(r.events) + ", makespan_s " + fmt(t_end) +
         (r.run.ended ? "" : " (no run_end; trace truncated)") + "\n";
  out += "apps: " + std::to_string(finished) + "/" + std::to_string(r.apps.size()) +
         " finished, sojourn_s p50 " + fmt(r.sojourn_quantile(0.5)) + ", p90 " +
         fmt(r.sojourn_quantile(0.9)) + ", p99 " + fmt(r.sojourn_quantile(0.99)) +
         ", mean queue_wait_s " +
         fmt(wait_n == 0 ? 0 : wait_sum / static_cast<double>(wait_n)) + "\n";
  out += "queue: depth mean " + fmt(r.queue_depth.time_weighted_mean(t_end)) +
         ", peak " + fmt(r.queue_depth.peak()) + "; live executors peak " +
         fmt(r.live_executors.peak()) + "\n";
  out += "executors: spawned " + std::to_string(r.run.executors_spawned) +
         ", degraded " + std::to_string(r.run.executors_degraded) + ", thrash " +
         std::to_string(thrashes) + ", spill " + std::to_string(spills) + ", oom " +
         std::to_string(r.run.oom_total) + ", isolated reruns " +
         std::to_string(reruns) + " (" + fmt(rerun_t) + " s), lost_items " +
         fmt(lost) + "\n";
  out += "memory: mean utilization " + fmt(util) + ", peak reserved_gib " +
         fmt(peak_res) + ", reserved_gib_hours " + fmt(r.run.reserved_gib_hours) +
         ", used_gib_hours " + fmt(r.run.used_gib_hours) + "\n";
  return out;
}

void append_series_csv(std::string& out, const std::string& name, const StepSeries& s,
                       const std::string& filter) {
  if (!filter.empty() && name.find(filter) == std::string::npos) return;
  for (const StepSeries::Point& p : s.points)
    out += name + "," + fmt(p.t) + "," + fmt(p.v) + "\n";
}

int cmd_summarize(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  std::size_t threads = 1;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--threads") {
      if (i + 1 >= args.size()) return 2;
      const auto v = parse_size(args[++i]);
      if (!v || *v == 0) {
        std::cerr << "summarize: bad --threads value '" << args[i]
                  << "' (want a positive integer)\n";
        return 2;
      }
      threads = *v;
    } else {
      files.push_back(args[i]);
    }
  }
  if (files.empty()) {
    std::cerr << "summarize: no trace files given\n";
    return 2;
  }
  std::vector<std::string> outputs(files.size());
  const auto analyze_one = [&](std::size_t i) {
    const TimelineResult r = Timeline::analyze(TraceReader::read_file(files[i]));
    outputs[i] = render_summary(files[i], r);
  };
  if (threads > 1) {
    ThreadPool pool(threads);
    pool.parallel_for_each(files.size(), analyze_one);
  } else {
    for (std::size_t i = 0; i < files.size(); ++i) analyze_one(i);
  }
  for (const std::string& s : outputs) std::cout << s;
  return 0;
}

int cmd_diff(const std::vector<std::string>& args) {
  if (args.size() != 2) {
    std::cerr << "diff: expected exactly two trace files\n";
    return 2;
  }
  const TimelineResult a = Timeline::analyze(TraceReader::read_file(args[0]));
  const TimelineResult b = Timeline::analyze(TraceReader::read_file(args[1]));
  std::cout << render_text(compare_runs(a, b));
  return 0;
}

int cmd_timeline(const std::vector<std::string>& args) {
  std::string file, filter;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--csv") continue;  // CSV is the only output format
    if (args[i] == "--series") {
      if (i + 1 >= args.size()) return 2;
      filter = args[++i];
    } else {
      file = args[i];
    }
  }
  if (file.empty()) {
    std::cerr << "timeline: no trace file given\n";
    return 2;
  }
  const TimelineResult r = Timeline::analyze(TraceReader::read_file(file));
  std::string out = "series,t,value\n";
  append_series_csv(out, "cluster.queue_depth", r.queue_depth, filter);
  append_series_csv(out, "cluster.apps_in_system", r.apps_in_system, filter);
  append_series_csv(out, "cluster.live_executors", r.live_executors, filter);
  for (std::size_t n = 0; n < r.nodes.size(); ++n) {
    const std::string prefix = "node" + std::to_string(n) + ".";
    append_series_csv(out, prefix + "reserved_gib", r.nodes[n].reserved_gib, filter);
    append_series_csv(out, prefix + "utilization", r.nodes[n].utilization, filter);
    append_series_csv(out, prefix + "cpu_load", r.nodes[n].cpu_load, filter);
    append_series_csv(out, prefix + "occupancy", r.nodes[n].occupancy, filter);
  }
  std::cout << out;
  return 0;
}

int cmd_apps(const std::vector<std::string>& args) {
  std::string file;
  std::size_t top = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--top") {
      if (i + 1 >= args.size()) return 2;
      const auto v = parse_size(args[++i]);
      if (!v) {
        std::cerr << "apps: bad --top value '" << args[i]
                  << "' (want a non-negative integer; 0 lists all)\n";
        return 2;
      }
      top = *v;
    } else {
      file = args[i];
    }
  }
  if (file.empty()) {
    std::cerr << "apps: no trace file given\n";
    return 2;
  }
  const TimelineResult r = Timeline::analyze(TraceReader::read_file(file));
  std::vector<AppRecord> apps = r.apps;
  // Slowest first; ties (and unfinished apps, turnaround 0) break by app id
  // so the listing stays deterministic.
  std::stable_sort(apps.begin(), apps.end(), [](const AppRecord& x, const AppRecord& y) {
    return x.turnaround > y.turnaround;
  });
  if (top > 0 && apps.size() > top) apps.resize(top);
  std::cout << "app,benchmark,turnaround_s,queue_wait_s,exec_time_s,executors,"
               "ooms,thrashes,reruns,rerun_time_s,lost_items,finished\n";
  for (const AppRecord& a : apps) {
    std::cout << a.app << "," << a.benchmark << "," << fmt(a.turnaround) << ","
              << fmt(a.queue_wait) << "," << fmt(a.exec_time) << "," << a.executors
              << "," << a.ooms << "," << a.thrashes << "," << a.rerun_executors << ","
              << fmt(a.rerun_time) << "," << fmt(a.lost_items) << ","
              << (a.finished ? 1 : 0) << "\n";
  }
  return 0;
}

int cmd_bench(const std::vector<std::string>& args) {
  std::string file;
  int repeat = 5;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--repeat") {
      if (i + 1 >= args.size()) return 2;
      const auto v = parse_size(args[++i]);
      if (!v || *v == 0 || *v > 1000) {
        std::cerr << "bench: bad --repeat value '" << args[i]
                  << "' (want an integer in [1, 1000])\n";
        return 2;
      }
      repeat = static_cast<int>(*v);
    } else {
      file = args[i];
    }
  }
  if (file.empty()) {
    std::cerr << "bench: no trace file given\n";
    return 2;
  }
  // Warm the page cache so we time parsing, not disk.
  std::vector<OwnedEvent> events = TraceReader::read_file(file);
  double best_parse = 0, best_analyze = 0;
  for (int i = 0; i < repeat; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    events = TraceReader::read_file(file);
    const auto t1 = std::chrono::steady_clock::now();
    const TimelineResult r = Timeline::analyze(events);
    const auto t2 = std::chrono::steady_clock::now();
    if (r.events != static_cast<std::int64_t>(events.size())) return 1;
    const double parse_s = std::chrono::duration<double>(t1 - t0).count();
    const double analyze_s = std::chrono::duration<double>(t2 - t1).count();
    const double n = static_cast<double>(events.size());
    best_parse = std::max(best_parse, n / parse_s);
    best_analyze = std::max(best_analyze, n / analyze_s);
  }
  std::printf("trace_bench file=%s events=%zu parse_events_per_sec=%.0f "
              "analyze_events_per_sec=%.0f\n",
              file.c_str(), events.size(), best_parse, best_analyze);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string cmd = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "summarize") return cmd_summarize(args);
    if (cmd == "diff") return cmd_diff(args);
    if (cmd == "timeline") return cmd_timeline(args);
    if (cmd == "apps") return cmd_apps(args);
    if (cmd == "bench") return cmd_bench(args);
  } catch (const std::exception& e) {
    std::cerr << "smoe-trace " << cmd << ": " << e.what() << "\n";
    return 1;
  }
  std::cerr << "smoe-trace: unknown subcommand '" << cmd << "'\n";
  return usage(argv[0]);
}
