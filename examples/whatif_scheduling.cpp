// What-if analysis for operators: evaluate every co-location policy on a
// chosen runtime scenario and batch size, reporting normalized STP and ANTT
// reduction against the isolated baseline.
//
//   ./build/examples/whatif_scheduling [scenario] [n_mixes] [seed]
//                                      [--trace out.jsonl] [--chrome-trace out.trace]
//   e.g. ./build/examples/whatif_scheduling L7 10 42
#include <iostream>
#include <string>

#include "common/bench_cli.h"
#include "common/table.h"
#include "obs/cli.h"
#include "sched/experiment.h"
#include "sched/policies_basic.h"
#include "sched/policies_learned.h"

using namespace smoe;

int main(int argc, char** argv) {
  obs::TraceCli trace_cli(argc, argv);
  const std::string label = argc > 1 ? argv[1] : "L5";
  std::size_t n_mixes = 5;
  std::uint64_t seed = 7;
  if (argc > 2) {
    const auto parsed = parse_size(argv[2]);
    if (!parsed || *parsed == 0) {
      std::cerr << "whatif_scheduling: n_mixes must be a positive integer, got '" << argv[2]
                << "'\nusage: whatif_scheduling [scenario] [n_mixes] [seed]\n";
      return 2;
    }
    n_mixes = *parsed;
  }
  if (argc > 3) {
    const auto parsed = parse_size(argv[3]);
    if (!parsed) {
      std::cerr << "whatif_scheduling: seed must be a non-negative integer, got '" << argv[3]
                << "'\nusage: whatif_scheduling [scenario] [n_mixes] [seed]\n";
      return 2;
    }
    seed = *parsed;
  }

  const wl::Scenario& scenario = wl::scenario_by_label(label);
  std::cout << "scenario " << scenario.label << ": " << scenario.n_apps
            << " applications per mix, " << n_mixes << " mixes, seed " << seed << "\n\n";

  const wl::FeatureModel features(seed);
  sim::SimConfig cfg;
  cfg.seed = seed;
  cfg.sink = &trace_cli.sink();
  sched::ExperimentRunner runner(cfg, features, n_mixes, seed);

  sched::PairwisePolicy pairwise;
  sched::OnlineSearchPolicy online;
  sched::QuasarPolicy quasar(features, seed);
  sched::MoePolicy ours(features, seed);
  sched::OraclePolicy oracle;
  const auto results =
      runner.run_scenario(scenario, {&pairwise, &online, &quasar, &ours, &oracle});

  TextTable table({"policy", "norm. STP (geomean)", "STP range", "ANTT reduction",
                   "mean makespan (min)", "OOMs"});
  for (const auto& r : results)
    table.add_row({r.scheme, TextTable::num(r.stp_geomean, 2) + "x",
                   "[" + TextTable::num(r.stp_min, 2) + ", " + TextTable::num(r.stp_max, 2) + "]",
                   TextTable::pct(r.antt_red_mean, 1),
                   TextTable::num(r.mean_makespan / 60.0, 1), std::to_string(r.oom_total)});
  table.render(std::cout);
  std::cout << "\nbaseline: the same mixes executed one at a time with exclusive memory.\n";
  return 0;
}
