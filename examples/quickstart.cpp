// Quickstart: train the mixture-of-experts memory predictor, predict the
// footprint of an unseen Spark application, and size a co-located executor.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <iostream>

#include "core/predictor.h"
#include "sched/training_data.h"
#include "sparksim/app_probe.h"
#include "workloads/features.h"
#include "workloads/suites.h"

using namespace smoe;

int main() {
  // 1. Offline: profile the 16 HiBench/BigDataBench training programs and
  //    train the expert selector (a one-off cost).
  const wl::FeatureModel features(/*seed=*/1);
  core::ExpertPool pool = core::ExpertPool::paper_default();
  const core::SelectorModel selector =
      core::train_selector(pool, sched::make_training_set(features, /*seed=*/2,
                                                          {"SP.Gmm"}));
  const core::MoePredictor predictor(pool, selector);

  // 2. Runtime: an unseen application (SP.Gmm, ~30 GB input) arrives. Run it
  //    on ~100 MB of input to collect features, select the expert...
  const auto& app = wl::find_benchmark("SP.Gmm");
  sim::AppProbe probe(app, features, wl::items_for_input_class(wl::InputClass::kMedium),
                      /*seed=*/3);
  const core::Selection sel = predictor.select(probe.raw_features());
  std::cout << "selected expert : " << predictor.pool().at(sel.expert_index).name() << "\n"
            << "nearest program : " << sel.nearest_program << " (distance "
            << sel.distance << ", " << (predictor.confident(sel) ? "confident" : "fallback")
            << ")\n";

  // 3. ...calibrate its two parameters from the 5% / 10% profiling runs...
  core::CalibrationProbes probes;
  probes.x1 = 0.05 * probe.input_items();
  probes.x2 = 0.10 * probe.input_items();
  probes.y1 = probe.measure_footprint(probes.x1);
  probes.y2 = probe.measure_footprint(probes.x2);
  const core::MemoryModel model = predictor.calibrate(sel, probes);
  std::cout << "calibrated      : " << model.expert().formula() << "  (m="
            << model.params().m << ", b=" << model.params().b << ")\n";

  // 4. ...and use the model to co-locate: how much memory does the whole
  //    input need, and how many items fit a 16 GiB spare-memory budget?
  const Items input = probe.input_items();
  std::cout << "footprint(" << gib_from_items(input) << " GB input) = "
            << model.footprint(input) << " GiB (true "
            << app.footprint(input) << " GiB)\n"
            << "items fitting a 16 GiB budget: " << model.items_for_budget(16.0) << "\n";
  return 0;
}
