// The extensibility story (Section 3.1): plug a brand-new memory-function
// family into the expert pool without retraining anything. We register a
// square-root law y = m*sqrt(x) + b — say, for an application whose state
// grows with the sample standard error — and show that (a) offline training
// labels a matching program with the new expert, and (b) the KNN selector
// needs no retraining because experts are just class labels.
//
//   ./build/examples/custom_expert
#include <cmath>
#include <iostream>
#include <limits>

#include "common/stats.h"
#include "core/predictor.h"
#include "sched/training_data.h"
#include "workloads/features.h"

using namespace smoe;

namespace {

class SqrtLawExpert final : public core::MemoryExpert {
 public:
  std::string name() const override { return "SqrtLaw"; }
  std::string formula() const override { return "y = m * sqrt(x) + b"; }

  GiB eval(core::Params p, Items x) const override { return p.m * std::sqrt(x) + p.b; }

  Items inverse(core::Params p, GiB budget) const override {
    if (p.m <= 0) return budget >= p.b ? std::numeric_limits<double>::infinity() : 0.0;
    if (budget <= p.b) return 0.0;
    const double r = (budget - p.b) / p.m;
    return r * r;
  }

  core::FitResult fit(std::span<const double> xs, std::span<const double> ys) const override {
    std::vector<double> sx(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) sx[i] = std::sqrt(xs[i]);
    const ml::LinearFit lf = ml::ols(sx, ys);
    core::FitResult out;
    out.params = {lf.slope, lf.intercept};
    std::vector<double> pred(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) pred[i] = eval(out.params, xs[i]);
    out.r2 = r_squared(ys, pred);
    return out;
  }

  core::Params calibrate(Items x1, GiB y1, Items x2, GiB y2) const override {
    const double m = (y2 - y1) / (std::sqrt(x2) - std::sqrt(x1));
    return {m, y1 - m * std::sqrt(x1)};
  }
};

}  // namespace

int main() {
  // 1. Extend the paper's pool with the new family. Existing labels (0..2)
  //    are untouched; the new expert becomes label 3.
  core::ExpertPool pool = core::ExpertPool::paper_default();
  const int sqrt_label = pool.add(std::make_unique<SqrtLawExpert>());
  std::cout << "registered expert " << sqrt_label << ": " << pool.at(sqrt_label).formula()
            << "\n";

  // 2. Offline training against the extended pool: a program whose profile
  //    follows a sqrt law is now labeled with the new expert automatically.
  const wl::FeatureModel features(1);
  auto examples = sched::make_training_set(features, 2);
  core::TrainingExample sqrt_app;
  sqrt_app.name = "User.StdError";
  Rng rng(3);
  sqrt_app.raw_features = examples.front().raw_features;  // any plausible vector
  for (double x = 300; x < 1.1e6; x *= 3.2) {
    sqrt_app.profile_items.push_back(x);
    sqrt_app.profile_footprints.push_back((0.04 * std::sqrt(x) + 3.0) * rng.normal(1.0, 0.003));
  }
  examples.push_back(sqrt_app);

  const core::SelectorModel selector = core::train_selector(pool, examples);
  for (const auto& p : selector.programs)
    if (p.name == "User.StdError")
      std::cout << p.name << " labeled with expert: " << pool.at(p.expert_index).name()
                << " (R^2 = " << p.fit.r2 << ")\n";

  // 3. Runtime: calibrate the new family from two probes and size a chunk.
  const core::MoePredictor predictor(pool, selector);
  core::CalibrationProbes probes;
  probes.x1 = 1000;
  probes.y1 = 0.04 * std::sqrt(1000.0) + 3.0;
  probes.x2 = 4000;
  probes.y2 = 0.04 * std::sqrt(4000.0) + 3.0;
  core::Selection sel;
  sel.expert_index = sqrt_label;
  const core::MemoryModel model = predictor.calibrate(sel, probes);
  std::cout << "calibrated " << model.expert().formula() << " with m=" << model.params().m
            << ", b=" << model.params().b << "\n"
            << "footprint(250k items) = " << model.footprint(250000) << " GiB\n"
            << "items fitting 16 GiB  = " << model.items_for_budget(16.0) << "\n";
  return 0;
}
