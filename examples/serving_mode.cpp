// Open-loop serving: a Poisson stream of Spark applications arrives at a
// live cluster, and an admission policy decides at the gate whether each one
// enters, waits, or is shed. Contrasts the unbounded open-loop baseline with
// MURS-style memory-pressure backpressure at the same offered load.
//
//   ./build/examples/serving_mode [--trace out.jsonl]
#include <iostream>

#include "common/table.h"
#include "obs/cli.h"
#include "sched/policies_learned.h"
#include "sparksim/admission.h"
#include "sparksim/engine.h"
#include "workloads/features.h"

using namespace smoe;

int main(int argc, char** argv) {
  obs::TraceCli trace_cli(argc, argv);

  constexpr std::uint64_t kSeed = 7;
  const wl::FeatureModel features(kSeed);
  sim::SimConfig cfg;
  cfg.seed = kSeed;
  cfg.cluster.n_nodes = 8;
  cfg.sink = &trace_cli.sink();

  // 40 applications arriving at ~2.4 apps/hour — past this small cluster's
  // drain rate, so the gate has real work to do. The same seed produces the
  // same application sequence for both policies.
  const double rate = 2.4 / 3600.0;
  auto load = sim::poisson_load(40, rate, kSeed);
  {
    // Attach the isolated-execution baseline so normalized turnaround (the
    // paper's ANTT, Section 5.3) is reported.
    sim::ClusterSim probe(cfg, features);
    for (auto& arrival : load) arrival.isolated_s = probe.isolated_exec_time(arrival.app);
  }

  sim::UnboundedAdmission unbounded;
  sim::MursGateAdmission murs(0.5);
  sim::AdmissionPolicy* gates[] = {&unbounded, &murs};

  TextTable table({"admission", "admitted", "dropped", "deferred", "tput apps/hr",
                   "ANTT", "makespan h"});
  for (sim::AdmissionPolicy* gate : gates) {
    sim::ClusterSim cluster(cfg, features);
    sched::MoePolicy policy(features, kSeed);
    const sim::ServingResult r = cluster.serve(load, policy, *gate);
    table.add_row({gate->name(), std::to_string(r.admitted), std::to_string(r.dropped),
                   std::to_string(r.deferrals), TextTable::num(r.throughput * 3600.0, 2),
                   TextTable::num(r.antt, 2), TextTable::num(r.makespan / 3600.0, 1)});
  }
  table.render(std::cout);
  std::cout << "\nThe MURS-style gate holds arrivals while the monitor's smoothed\n"
               "memory view shows pressure: same offered work, same throughput,\n"
               "but co-location happens on the gate's terms, not the burst's.\n";
  return 0;
}
