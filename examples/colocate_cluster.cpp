// Drive the full co-location pipeline on the paper's Table 4 workload: 30
// Spark applications on a 40-node cluster, scheduled with the mixture-of-
// experts memory predictor, and compare against running them one by one.
//
//   ./build/examples/colocate_cluster [--trace out.jsonl] [--chrome-trace out.trace]
//                                     [--report]
#include <iostream>
#include <string>

#include "common/table.h"
#include "obs/cli.h"
#include "obs/report.h"
#include "sched/experiment.h"
#include "sched/policies_basic.h"
#include "sched/policies_learned.h"

using namespace smoe;

int main(int argc, char** argv) {
  obs::TraceCli trace_cli(argc, argv);
  const bool want_report = argc > 1 && std::string(argv[1]) == "--report";

  constexpr std::uint64_t kSeed = 7;
  const wl::FeatureModel features(kSeed);
  sim::SimConfig cfg;
  cfg.seed = kSeed;
  cfg.sink = &trace_cli.sink();
  sched::ExperimentRunner runner(cfg, features, 1, 1);

  const wl::TaskMix mix = wl::table4_mix();
  sched::MoePolicy ours(features, kSeed);
  const auto run = runner.run_mix(mix, ours);

  std::cout << "Scheduled " << mix.size() << " Spark applications on "
            << cfg.cluster.n_nodes << " nodes with memory-aware co-location.\n\n";
  TextTable table({"application", "input", "profiled (s)", "started (s)", "finished (s)",
                   "oom"});
  for (const auto& app : run.result.apps)
    table.add_row({app.benchmark,
                   TextTable::num(gib_from_items(app.input_items), 0) + " GB",
                   TextTable::num(app.profile_end, 0), TextTable::num(app.start, 0),
                   TextTable::num(app.finish, 0), std::to_string(app.oom_events)});
  table.render(std::cout);

  std::cout << "\nwhole-mix wall clock : " << TextTable::num(run.result.makespan / 60.0, 1)
            << " min\n"
            << "mean node utilization: " << TextTable::pct(run.result.trace.overall_mean(), 1)
            << "\n"
            << "normalized STP       : " << TextTable::num(run.normalized.norm_stp, 2)
            << "x over one-by-one isolated execution\n"
            << "ANTT reduction       : " << TextTable::pct(run.normalized.antt_reduction, 1)
            << "\n"
            << "executors spawned    : " << run.result.executors_spawned << " ("
            << run.result.executors_degraded << " degraded, " << run.result.oom_total
            << " OOM)\n"
            << "memory reserved/used : " << TextTable::num(run.result.reserved_gib_hours, 0)
            << " / " << TextTable::num(run.result.used_gib_hours, 0)
            << " GiB-hours (tight reservations = more co-location)\n";

  if (want_report) {
    std::cout << "\n";
    obs::render_text(sched::make_run_report(run, "Table 4 mix / Ours (MoE)"), std::cout);
  }
  return 0;
}
